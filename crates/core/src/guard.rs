//! Resource governance for mining runs: budgets, cancellation, and
//! partial-result bookkeeping.
//!
//! A [`RunGuard`] is a cheap, clonable handle carrying a wall-clock
//! deadline, a work budget measured in contingency cells, an approximate
//! memory budget for the vertical counter's scratch arena, and an
//! external cancellation flag. The miners consult it *cooperatively*: at
//! every level boundary (via [`Engine::evaluate_level_guarded`]
//! [`crate::engine`]) and, through the [`CountProbe`] implementation,
//! inside the counting layer's interior loops (horizontal chunk loop,
//! vertical prefix-class loop, parallel fan-out).
//!
//! When a limit trips, the run does not panic or return garbage: it stops
//! at the next checkpoint and reports a **sound partial answer set** —
//! every reported set would also be reported by the unbounded run —
//! together with a [`Completion::Truncated`] status and a
//! [`ResumeState`] from which [`crate::session::MiningSession::resume`] can
//! continue the sweep and reproduce the complete answer exactly.
//!
//! The memory budget has a softer failure mode: a vertical counter that
//! would exceed it *degrades* to horizontal scans instead of aborting
//! (see `ccs-itemset`'s `CountingStats::degraded_batches`); only counters
//! with no cheaper strategy trip the guard via
//! [`CountProbe::note_memory_trip`].

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ccs_itemset::{CountProbe, Itemset};

use crate::miner::Algorithm;
use crate::persist::CheckpointRecorder;

/// The one sanctioned wall-clock read outside this module. Miners that
/// need a start-of-run timestamp take it from here so every clock the
/// mining layer sees funnels through guard code (`ccs-lint` enforces
/// this as `nondeterminism-in-kernel`), keeping a single seam for any
/// future virtual-clock testing.
#[must_use]
pub fn wall_now() -> Instant {
    Instant::now()
}

/// The resource limits a [`RunGuard`] enforces. All default to `None`
/// (unlimited); a guard with empty limits is still *armed* — it tracks
/// work, honours external cancellation, and produces resume snapshots.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GuardLimits {
    /// Wall-clock budget for the whole run, measured from guard creation.
    pub timeout: Option<Duration>,
    /// Work budget in contingency cells counted (`2^k` per `k`-set
    /// table), the paper's dominating cost term.
    pub work_budget_cells: Option<u64>,
    /// Approximate memory budget, in bytes, for counting scratch space.
    pub memory_budget_bytes: Option<usize>,
}

/// Why a run was truncated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TruncationReason {
    /// The wall-clock deadline passed.
    Deadline,
    /// The contingency-cell work budget was exhausted.
    WorkBudget,
    /// A memory budget tripped in a counter with no fallback strategy.
    MemoryBudget,
    /// The external cancellation flag was raised (e.g. Ctrl-C).
    Cancelled,
}

impl fmt::Display for TruncationReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TruncationReason::Deadline => write!(f, "deadline"),
            TruncationReason::WorkBudget => write!(f, "work budget"),
            TruncationReason::MemoryBudget => write!(f, "memory budget"),
            TruncationReason::Cancelled => write!(f, "cancelled"),
        }
    }
}

/// Whether a [`crate::MiningResult`] covers the whole search space or was
/// cut short by its [`RunGuard`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Completion {
    /// The run examined everything the algorithm would ever examine; the
    /// answer set is the exact, final one.
    #[default]
    Complete,
    /// The run stopped at a guard checkpoint. The answer set is a sound
    /// *subset* of the complete answer set (every reported set is a
    /// genuine, minimal answer), covering the lattice up to
    /// `frontier_level`.
    Truncated {
        /// Why the run stopped.
        reason: TruncationReason,
        /// The deepest fully-completed lattice level; answers above it
        /// may be missing.
        frontier_level: usize,
        /// Contingency tables built before stopping.
        sets_evaluated: u64,
    },
}

impl Completion {
    /// `true` for [`Completion::Complete`].
    pub fn is_complete(&self) -> bool {
        matches!(self, Completion::Complete)
    }

    /// The truncation reason, if the run was truncated.
    pub fn truncation_reason(&self) -> Option<TruncationReason> {
        match self {
            Completion::Complete => None,
            Completion::Truncated { reason, .. } => Some(*reason),
        }
    }
}

impl fmt::Display for Completion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Completion::Complete => write!(f, "complete"),
            Completion::Truncated {
                reason,
                frontier_level,
                sets_evaluated,
            } => write!(
                f,
                "truncated ({reason}) at level {frontier_level} after {sets_evaluated} sets"
            ),
        }
    }
}

const TRIP_NONE: u8 = 0;

fn reason_code(reason: TruncationReason) -> u8 {
    match reason {
        TruncationReason::Deadline => 1,
        TruncationReason::WorkBudget => 2,
        TruncationReason::MemoryBudget => 3,
        TruncationReason::Cancelled => 4,
    }
}

fn code_reason(code: u8) -> Option<TruncationReason> {
    match code {
        1 => Some(TruncationReason::Deadline),
        2 => Some(TruncationReason::WorkBudget),
        3 => Some(TruncationReason::MemoryBudget),
        4 => Some(TruncationReason::Cancelled),
        _ => None,
    }
}

#[derive(Debug)]
struct GuardInner {
    /// Armed guards check limits, honour cancellation, and cause the
    /// miners to take resume snapshots; unarmed guards are inert no-ops
    /// so the infallible mining paths keep their exact pre-guard
    /// behaviour and cost.
    armed: bool,
    deadline: Option<Instant>,
    work_budget: Option<u64>,
    memory_budget: Option<usize>,
    cells_charged: AtomicU64,
    cancelled: Arc<AtomicBool>,
    /// `TRIP_NONE`, or the `reason_code` of the first trip. First trip
    /// wins; later trips (e.g. from racing parallel workers) are ignored.
    tripped: AtomicU8,
}

/// A clonable, thread-safe handle governing one mining run. See the
/// module docs for the checkpoint protocol.
#[derive(Debug, Clone)]
pub struct RunGuard {
    inner: Arc<GuardInner>,
    /// The durability layer's stamping hook, attached by the session when
    /// a [`crate::CheckpointPolicy`] is configured. Rides on the guard
    /// (not the engine or the miners) so the kernel can stamp at exactly
    /// the points it takes resume snapshots without widening any miner
    /// signature.
    recorder: Option<Arc<CheckpointRecorder>>,
}

impl RunGuard {
    /// An armed guard enforcing `limits` (empty limits still arm the
    /// guard: cancellation works and resume snapshots are taken).
    pub fn new(limits: GuardLimits) -> Self {
        Self::with_cancel_flag(limits, Arc::new(AtomicBool::new(false)))
    }

    /// An armed guard whose cancellation is driven by a caller-owned
    /// flag — e.g. one raised from a Ctrl-C handler.
    pub fn with_cancel_flag(limits: GuardLimits, cancelled: Arc<AtomicBool>) -> Self {
        RunGuard {
            inner: Arc::new(GuardInner {
                armed: true,
                deadline: limits.timeout.and_then(|t| Instant::now().checked_add(t)),
                work_budget: limits.work_budget_cells,
                memory_budget: limits.memory_budget_bytes,
                cells_charged: AtomicU64::new(0),
                cancelled,
                tripped: AtomicU8::new(TRIP_NONE),
            }),
            recorder: None,
        }
    }

    /// The inert guard used by the infallible mining paths: never trips,
    /// never charges, and suppresses resume snapshots, so unguarded runs
    /// behave byte-identically to a build without guards.
    pub fn unlimited() -> Self {
        RunGuard {
            inner: Arc::new(GuardInner {
                armed: false,
                deadline: None,
                work_budget: None,
                memory_budget: None,
                cells_charged: AtomicU64::new(0),
                cancelled: Arc::new(AtomicBool::new(false)),
                tripped: AtomicU8::new(TRIP_NONE),
            }),
            recorder: None,
        }
    }

    /// `true` when limits, cancellation, and snapshotting are active.
    pub fn is_armed(&self) -> bool {
        self.inner.armed
    }

    /// Attaches the durability recorder; governed state (budgets, trip
    /// status, cancellation) stays shared with the original handle.
    pub(crate) fn with_recorder(&self, recorder: Arc<CheckpointRecorder>) -> Self {
        RunGuard {
            inner: Arc::clone(&self.inner),
            recorder: Some(recorder),
        }
    }

    /// The attached durability recorder, if checkpointing is configured.
    pub(crate) fn recorder(&self) -> Option<&CheckpointRecorder> {
        self.recorder.as_deref()
    }

    /// The shared cancellation flag; raise it (or call
    /// [`RunGuard::cancel`]) from any thread to stop the run at its next
    /// checkpoint.
    pub fn cancel_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.inner.cancelled)
    }

    /// Raises the cancellation flag.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Relaxed);
    }

    /// Forces the guard into the tripped state with `reason` (first trip
    /// wins). Public so fault-injection harnesses and embedders can
    /// simulate limit exhaustion deterministically.
    pub fn trip(&self, reason: TruncationReason) {
        let _ = self.inner.tripped.compare_exchange(
            TRIP_NONE,
            reason_code(reason),
            Ordering::Relaxed,
            Ordering::Relaxed,
        );
    }

    /// The first trip reason, if any limit has tripped.
    pub fn trip_reason(&self) -> Option<TruncationReason> {
        code_reason(self.inner.tripped.load(Ordering::Relaxed))
    }

    /// Contingency cells charged against the work budget so far.
    pub fn cells_charged(&self) -> u64 {
        self.inner.cells_charged.load(Ordering::Relaxed)
    }

    /// The cooperative checkpoint: `Ok(())` to keep going, or the
    /// truncation reason to stop. Checks, in order: an earlier trip, the
    /// cancellation flag, the deadline, and the work budget — and trips
    /// the guard on the first violation so every later checkpoint agrees
    /// on the reason. Always `Ok` on an unarmed guard.
    pub fn checkpoint(&self) -> Result<(), TruncationReason> {
        let inner = &*self.inner;
        if !inner.armed {
            return Ok(());
        }
        if let Some(reason) = self.trip_reason() {
            return Err(reason);
        }
        if inner.cancelled.load(Ordering::Relaxed) {
            self.trip(TruncationReason::Cancelled);
            return Err(TruncationReason::Cancelled);
        }
        if let Some(deadline) = inner.deadline {
            if Instant::now() >= deadline {
                self.trip(TruncationReason::Deadline);
                return Err(TruncationReason::Deadline);
            }
        }
        if let Some(budget) = inner.work_budget {
            if inner.cells_charged.load(Ordering::Relaxed) >= budget {
                self.trip(TruncationReason::WorkBudget);
                return Err(TruncationReason::WorkBudget);
            }
        }
        Ok(())
    }
}

impl CountProbe for RunGuard {
    fn should_stop(&self) -> bool {
        self.checkpoint().is_err()
    }

    fn is_inert(&self) -> bool {
        // Unarmed guards never trip, so pooled counters may skip the
        // periodic probe-poll loop and block on worker results directly.
        !self.inner.armed
    }

    fn charge(&self, cells: u64) -> bool {
        let inner = &*self.inner;
        if !inner.armed {
            return false;
        }
        let total = inner.cells_charged.fetch_add(cells, Ordering::Relaxed) + cells;
        match inner.work_budget {
            Some(budget) if total >= budget => {
                self.trip(TruncationReason::WorkBudget);
                true
            }
            _ => false,
        }
    }

    fn arena_budget_bytes(&self) -> Option<usize> {
        if self.inner.armed {
            self.inner.memory_budget
        } else {
            None
        }
    }

    fn note_memory_trip(&self) {
        if self.inner.armed {
            self.trip(TruncationReason::MemoryBudget);
        }
    }
}

/// The frontier a truncated run leaves behind: everything a fresh engine
/// needs to re-enter the interrupted sweep at its last completed level
/// boundary and finish it, reproducing the complete answer set exactly.
///
/// Opaque by design — produce one from a truncated
/// [`crate::MiningResult`], hand it back to
/// [`crate::session::MiningSession::resume`]. The snapshot never contains the
/// interrupted level's partial verdicts: that level is re-executed in
/// full on resume, which is what makes partially-counted batches safe to
/// discard.
#[derive(Debug, Clone, PartialEq)]
pub struct ResumeState {
    pub(crate) format: u16,
    pub(crate) algorithm: Algorithm,
    pub(crate) inner: ResumeInner,
}

/// The snapshot format the current build stamps and accepts. Format 1
/// was the pre-kernel layout (PRs 2–4), whose snapshots carried
/// per-miner loop state the unified kernel no longer reconstructs the
/// same way; resuming one would silently re-mine under different
/// bookkeeping, so format-mismatched snapshots are rejected with
/// [`crate::MiningError::ResumeFormatMismatch`] instead.
pub const RESUME_FORMAT: u16 = 2;

impl ResumeState {
    /// The algorithm that produced this snapshot; resuming runs the same
    /// one.
    pub fn algorithm(&self) -> Algorithm {
        self.algorithm
    }

    /// The snapshot format tag; resume rejects anything other than
    /// [`RESUME_FORMAT`].
    pub fn format(&self) -> u16 {
        self.format
    }

    /// Forges a copy with a different format tag. Exists so the
    /// fault-injection suite can exercise the rejection path; snapshots
    /// with a forged tag are rejected by every resume entry point.
    #[doc(hidden)]
    pub fn with_format(&self, format: u16) -> Self {
        Self {
            format,
            ..self.clone()
        }
    }
}

/// Per-algorithm loop state at the last completed level boundary. Sets
/// are stored as sorted `Vec`s (not hash sets) so snapshots compare
/// deterministically.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum ResumeInner {
    /// The BMS level loop (BMS baseline and BMS+).
    Bms(BmsSnapshot),
    /// The BMS++ level loop.
    PlusPlus {
        level: usize,
        cands: Vec<Itemset>,
        sig_candidates: Vec<Itemset>,
    },
    /// BMS* interrupted during its phase-1 BMS run.
    StarPhase1(BmsSnapshot),
    /// BMS* interrupted during the phase-2 upward sweep.
    StarPhase2 {
        k: usize,
        sig: Vec<Itemset>,
        frontier: Vec<(usize, Vec<Itemset>)>,
        seen: Vec<Itemset>,
    },
    /// BMS** interrupted during its phase-1 SUPP enumeration.
    StarStarPhase1 {
        level: usize,
        cands: Vec<Itemset>,
        supp: Vec<(usize, Vec<Itemset>)>,
    },
    /// BMS** interrupted during the phase-2 SIG sweep.
    StarStarPhase2 {
        k: usize,
        current: Vec<Itemset>,
        sig: Vec<Itemset>,
        supp: Vec<(usize, Vec<Itemset>)>,
    },
    /// The exhaustive miner keeps no incremental state; resuming restarts
    /// it from scratch.
    NaiveRestart,
}

/// The BMS level-loop state shared by several resume variants.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct BmsSnapshot {
    pub(crate) level: usize,
    pub(crate) cands: Vec<Itemset>,
    pub(crate) sig: Vec<Itemset>,
    pub(crate) notsig: Vec<Itemset>,
}

/// Sorts a set-like collection of itemsets into the deterministic `Vec`
/// form snapshots use.
pub(crate) fn sorted_sets<I: IntoIterator<Item = Itemset>>(sets: I) -> Vec<Itemset> {
    let mut v: Vec<Itemset> = sets.into_iter().collect();
    v.sort_unstable();
    v
}

/// Deterministic snapshot form of a per-level set family (levels sorted,
/// sets within a level sorted) — the frontier of BMS* phase 2 and the
/// SUPP levels of BMS**.
pub(crate) fn freeze_levels(
    levels: &std::collections::HashMap<usize, std::collections::HashSet<Itemset>>,
) -> Vec<(usize, Vec<Itemset>)> {
    let mut out: Vec<(usize, Vec<Itemset>)> = levels
        .iter()
        .map(|(&k, sets)| (k, sorted_sets(sets.iter().cloned())))
        .collect();
    out.sort_unstable_by_key(|&(k, _)| k);
    out
}

/// Inverse of [`freeze_levels`].
pub(crate) fn thaw_levels(
    levels: Vec<(usize, Vec<Itemset>)>,
) -> std::collections::HashMap<usize, std::collections::HashSet<Itemset>> {
    levels
        .into_iter()
        .map(|(k, sets)| (k, sets.into_iter().collect()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_guard_is_inert() {
        let g = RunGuard::unlimited();
        assert!(!g.is_armed());
        assert!(g.checkpoint().is_ok());
        assert!(!g.charge(1_000_000));
        assert!(!g.should_stop());
        assert_eq!(g.arena_budget_bytes(), None);
        g.note_memory_trip();
        assert_eq!(g.trip_reason(), None);
        assert!(g.checkpoint().is_ok());
    }

    #[test]
    fn armed_empty_limits_only_trip_on_cancel() {
        let g = RunGuard::new(GuardLimits::default());
        assert!(g.is_armed());
        assert!(g.checkpoint().is_ok());
        assert!(!g.charge(u64::MAX / 2));
        g.cancel();
        assert_eq!(g.checkpoint(), Err(TruncationReason::Cancelled));
        assert_eq!(g.trip_reason(), Some(TruncationReason::Cancelled));
    }

    #[test]
    fn work_budget_trips_on_charge_and_checkpoint() {
        let g = RunGuard::new(GuardLimits {
            work_budget_cells: Some(10),
            ..GuardLimits::default()
        });
        assert!(!g.charge(4));
        assert!(g.checkpoint().is_ok());
        assert!(g.charge(6), "reaching the budget exhausts it");
        assert_eq!(g.checkpoint(), Err(TruncationReason::WorkBudget));
    }

    #[test]
    fn zero_work_budget_trips_at_first_checkpoint() {
        let g = RunGuard::new(GuardLimits {
            work_budget_cells: Some(0),
            ..GuardLimits::default()
        });
        assert_eq!(g.checkpoint(), Err(TruncationReason::WorkBudget));
    }

    #[test]
    fn expired_deadline_trips() {
        let g = RunGuard::new(GuardLimits {
            timeout: Some(Duration::ZERO),
            ..GuardLimits::default()
        });
        assert_eq!(g.checkpoint(), Err(TruncationReason::Deadline));
        assert!(g.should_stop());
    }

    #[test]
    fn first_trip_wins() {
        let g = RunGuard::new(GuardLimits::default());
        g.trip(TruncationReason::MemoryBudget);
        g.trip(TruncationReason::Deadline);
        assert_eq!(g.trip_reason(), Some(TruncationReason::MemoryBudget));
        // The cancellation flag is set, but the earlier trip's reason is
        // reported by every later checkpoint.
        g.cancel();
        assert_eq!(g.checkpoint(), Err(TruncationReason::MemoryBudget));
    }

    #[test]
    fn clones_share_state() {
        let g = RunGuard::new(GuardLimits {
            work_budget_cells: Some(8),
            ..GuardLimits::default()
        });
        let h = g.clone();
        assert!(h.charge(8));
        assert_eq!(g.checkpoint(), Err(TruncationReason::WorkBudget));
        assert_eq!(g.cells_charged(), 8);
    }

    #[test]
    fn external_cancel_flag_is_shared() {
        let flag = Arc::new(AtomicBool::new(false));
        let g = RunGuard::with_cancel_flag(GuardLimits::default(), Arc::clone(&flag));
        assert!(g.checkpoint().is_ok());
        flag.store(true, Ordering::Relaxed);
        assert_eq!(g.checkpoint(), Err(TruncationReason::Cancelled));
    }

    #[test]
    fn completion_display_and_accessors() {
        assert_eq!(Completion::Complete.to_string(), "complete");
        assert!(Completion::Complete.is_complete());
        let t = Completion::Truncated {
            reason: TruncationReason::Deadline,
            frontier_level: 3,
            sets_evaluated: 42,
        };
        assert!(!t.is_complete());
        assert_eq!(t.truncation_reason(), Some(TruncationReason::Deadline));
        assert_eq!(
            t.to_string(),
            "truncated (deadline) at level 3 after 42 sets"
        );
    }
}
