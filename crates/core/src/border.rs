//! Solution-space borders: the complete characterization of §5.
//!
//! The paper's related-work discussion points out that minimal answers
//! alone do *not* characterize the solution space — "technically, this
//! is true only when one also returns, as part of the answer, some
//! description of the upper border". This module computes both borders
//! of the space
//!
//! ```text
//! SPACE(Q) = { S | S correlated ∧ CT-supported ∧ S ⊨ C }
//! ```
//!
//! * the **lower border**: minimal members (= `MIN_VALID(Q)`), and
//! * the **upper border**: maximal members (bounded above by the
//!   CT-support and anti-monotone-constraint borders).
//!
//! Because correlation and the monotone constraints are upward closed
//! while CT-support and the anti-monotone constraints are downward
//! closed, the space is *order-convex*: `A ⊆ S ⊆ B` with `A, B ∈ SPACE`
//! implies `S ∈ SPACE`. Membership is therefore exactly the sandwich
//! test implemented by [`SolutionSpace::contains`] — the two borders
//! really are a complete description.

use crate::guard::wall_now;
use std::collections::{HashMap, HashSet};

use ccs_constraints::AttributeTable;
use ccs_itemset::{candidate, Item, Itemset, MintermCounter, TransactionDb};

use crate::engine::Engine;
use crate::metrics::MiningMetrics;
use crate::query::{CorrelationQuery, MiningError};

/// Both borders of a constrained correlation query's solution space.
#[derive(Debug, Clone, PartialEq)]
pub struct SolutionSpace {
    /// Minimal members of the space, sorted (= `MIN_VALID(Q)`).
    pub minimal: Vec<Itemset>,
    /// Maximal members of the space, sorted.
    ///
    /// Complete up to `max_level`; if the sweep was truncated by the
    /// level cap (see [`SolutionSpace::truncated`]) there may be larger
    /// members above it.
    pub maximal: Vec<Itemset>,
    /// `true` when the level cap stopped a still-expanding sweep, in
    /// which case `maximal` describes the border only up to that level.
    pub truncated: bool,
    /// Work accounting.
    pub metrics: MiningMetrics,
}

impl SolutionSpace {
    /// Exact membership test via the sandwich property: `set` is in the
    /// space iff it contains some minimal member and is contained in
    /// some maximal member.
    pub fn contains(&self, set: &Itemset) -> bool {
        self.minimal.iter().any(|lo| lo.is_subset_of(set))
            && self.maximal.iter().any(|hi| set.is_subset_of(hi))
    }
}

/// Computes both borders of `SPACE(Q)` by a level-wise sweep of the
/// CT-supported, anti-monotone-valid region (which contains the space
/// and is downward closed, so Apriori candidate generation is exact).
///
/// # Errors
///
/// Returns [`MiningError`] if the constraints fail validation or
/// contain a neither-monotone (`avg`) constraint (whose space may have
/// holes and is not sandwich-characterizable).
pub fn solution_space<C: MintermCounter>(
    db: &TransactionDb,
    attrs: &AttributeTable,
    query: &CorrelationQuery,
    counter: &mut C,
) -> Result<SolutionSpace, MiningError> {
    query.validate(attrs)?;
    if query.constraints.has_neither_monotone() {
        return Err(MiningError::NonMonotoneConstraint);
    }
    let start = wall_now();
    let mut metrics = MiningMetrics::default();
    let base_stats = counter.stats();
    let analysis = query.constraints.analyze(attrs);
    let mut engine = Engine::new(counter, &query.params);

    // The enumeration universe: frequent items whose singleton passes
    // every anti-monotone constraint.
    let item_threshold = query.params.item_support_abs(db.len());
    let supports = db.item_supports();
    let good1: Vec<Item> = (0..db.n_items())
        .map(Item::new)
        .filter(|&i| {
            supports[i.index()] as u64 >= item_threshold
                && query
                    .constraints
                    .anti_monotone_satisfied(&Itemset::singleton(i), attrs)
        })
        .collect();

    // Level-wise enumeration of the supported region, remembering which
    // sets are space members.
    let mut in_space: HashMap<usize, HashSet<Itemset>> = HashMap::new();
    let mut cands = candidate::all_pairs(&good1);
    let mut level = 2usize;
    let mut truncated = false;
    while !cands.is_empty() {
        if level > query.params.max_level {
            truncated = true;
            break;
        }
        metrics.candidates_generated += cands.len() as u64;
        metrics.max_level_reached = level;
        let mut supported_level: HashSet<Itemset> = HashSet::new();
        let mut space_level: HashSet<Itemset> = HashSet::new();
        for set in &cands {
            if !analysis.am_residual_satisfied(set, attrs) {
                metrics.pruned_before_count += 1;
                continue;
            }
            let v = engine.evaluate(set);
            if !v.ct_supported {
                continue;
            }
            supported_level.insert(set.clone());
            if v.correlated && query.constraints.monotone_satisfied(set, attrs) {
                space_level.insert(set.clone());
            }
        }
        cands = candidate::apriori_gen(&supported_level);
        in_space.insert(level, space_level);
        level += 1;
    }

    // Borders. Convexity makes one-level checks exact: a member is
    // minimal iff no (k−1)-subset is a member, maximal iff no
    // (k+1)-superset is.
    let empty = HashSet::new();
    let mut minimal = Vec::new();
    let mut maximal = Vec::new();
    for (&k, members) in &in_space {
        let below = if k > 2 {
            in_space.get(&(k - 1)).unwrap_or(&empty)
        } else {
            &empty
        };
        let above = in_space.get(&(k + 1)).unwrap_or(&empty);
        for set in members {
            if set.subsets_dropping_one().all(|s| !below.contains(&s)) {
                minimal.push(set.clone());
            }
            let dominated = above.iter().any(|sup| set.is_subset_of(sup));
            if !dominated {
                maximal.push(set.clone());
            }
        }
    }
    minimal.sort_unstable();
    maximal.sort_unstable();

    metrics.sig_size = minimal.len() as u64;
    let end = engine.counting_stats();
    metrics.absorb_counting(end.since(&base_stats));
    metrics.elapsed = start.elapsed();
    Ok(SolutionSpace {
        minimal,
        maximal,
        truncated,
        metrics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bms_star_star::run_bms_star_star;
    use crate::params::MiningParams;
    use ccs_constraints::{Constraint, ConstraintSet};
    use ccs_itemset::HorizontalCounter;

    fn db() -> TransactionDb {
        let mut txns = Vec::new();
        for i in 0..80u32 {
            let mut t = Vec::new();
            if i % 2 == 0 {
                t.extend([0, 1]);
            }
            if i % 4 == 0 {
                t.extend([2, 3]);
            }
            if i % 5 == 0 {
                t.push(4);
            }
            txns.push(t);
        }
        TransactionDb::from_ids(5, txns)
    }

    fn query(constraints: ConstraintSet) -> CorrelationQuery {
        CorrelationQuery {
            params: MiningParams {
                confidence: 0.9,
                support_fraction: 0.1,
                max_level: 5,
                ..MiningParams::paper()
            },
            constraints,
        }
    }

    fn space_for(cs: ConstraintSet) -> SolutionSpace {
        let db = db();
        let attrs = AttributeTable::with_identity_prices(5);
        let mut c = HorizontalCounter::new(&db);
        solution_space(&db, &attrs, &query(cs), &mut c).unwrap()
    }

    #[test]
    fn lower_border_equals_min_valid() {
        let db = db();
        let attrs = AttributeTable::with_identity_prices(5);
        for cs in [
            ConstraintSet::new(),
            ConstraintSet::new().and(Constraint::max_le("price", 4.0)),
            ConstraintSet::new().and(Constraint::sum_ge("price", 5.0)),
            ConstraintSet::new().and(Constraint::min_le("price", 2.0)),
        ] {
            let q = query(cs);
            let space = {
                let mut c = HorizontalCounter::new(&db);
                solution_space(&db, &attrs, &q, &mut c).unwrap()
            };
            let mut c2 = HorizontalCounter::new(&db);
            let mv = run_bms_star_star(&db, &attrs, &q, &mut c2).unwrap();
            assert_eq!(
                space.minimal, mv.answers,
                "lower border vs MIN_VALID on {}",
                q.constraints
            );
        }
    }

    #[test]
    fn borders_are_antichains() {
        let space = space_for(ConstraintSet::new());
        for border in [&space.minimal, &space.maximal] {
            for (i, a) in border.iter().enumerate() {
                for b in &border[i + 1..] {
                    assert!(!a.is_subset_of(b) && !b.is_subset_of(a), "{a} vs {b}");
                }
            }
        }
    }

    #[test]
    fn every_minimal_member_is_below_some_maximal_member() {
        let space = space_for(ConstraintSet::new().and(Constraint::max_le("price", 5.0)));
        assert!(!space.truncated);
        for lo in &space.minimal {
            assert!(
                space.maximal.iter().any(|hi| lo.is_subset_of(hi)),
                "{lo} has no dominating maximal member"
            );
        }
    }

    #[test]
    fn sandwich_membership_matches_direct_evaluation() {
        use ccs_stats::ContingencyTable;
        let db = db();
        let attrs = AttributeTable::with_identity_prices(5);
        let cs = ConstraintSet::new().and(Constraint::sum_ge("price", 4.0));
        let q = query(cs);
        let space = {
            let mut c = HorizontalCounter::new(&db);
            solution_space(&db, &attrs, &q, &mut c).unwrap()
        };
        assert!(!space.truncated);
        let s_abs = q.params.support_abs(db.len());
        // Every set over the universe, levels 2..=4: direct definition vs
        // sandwich.
        let mut all = Vec::new();
        for a in 0..5u32 {
            for b in (a + 1)..5 {
                all.push(Itemset::from_ids([a, b]));
                for c in (b + 1)..5 {
                    all.push(Itemset::from_ids([a, b, c]));
                    for d in (c + 1)..5 {
                        all.push(Itemset::from_ids([a, b, c, d]));
                    }
                }
            }
        }
        for set in all {
            let mut counter = HorizontalCounter::new(&db);
            let table = ContingencyTable::build(&mut counter, &set);
            let direct = table.is_ct_supported(s_abs, q.params.ct_fraction)
                && table.is_correlated(q.params.confidence)
                && q.constraints.satisfied(&set, &attrs);
            assert_eq!(space.contains(&set), direct, "sandwich mismatch for {set}");
        }
    }

    #[test]
    fn avg_constraints_are_rejected() {
        let db = db();
        let attrs = AttributeTable::with_identity_prices(5);
        let q = query(ConstraintSet::new().and(Constraint::Avg {
            attr: "price".into(),
            cmp: ccs_constraints::Cmp::Le,
            value: 3.0,
        }));
        let mut c = HorizontalCounter::new(&db);
        assert!(matches!(
            solution_space(&db, &attrs, &q, &mut c),
            Err(MiningError::NonMonotoneConstraint)
        ));
    }
}
