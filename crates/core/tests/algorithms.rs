//! Per-algorithm behavioural tests, exercised through the public
//! `run_*` APIs.
//!
//! These lived as unit-test modules inside each algorithm's source file
//! until the miners were unified onto the levelwise kernel; the
//! algorithm files now hold only policy code, and the behavioural
//! contracts are pinned here from the outside.

use ccs_constraints::AttributeTable;
use ccs_constraints::{Constraint, ConstraintSet};
use ccs_core::params::MiningParams;
use ccs_core::query::{CorrelationQuery, MiningError, Semantics};
use ccs_core::{
    run_bms, run_bms_plus, run_bms_plus_plus, run_bms_star, run_bms_star_star, run_naive,
};
use ccs_itemset::{HorizontalCounter, Item, Itemset, MintermCounter, TransactionDb};

mod bms {
    use super::*;

    /// A database where items 0 and 1 are perfectly correlated and item 2
    /// is independent noise.
    fn correlated_db() -> TransactionDb {
        let mut txns = Vec::new();
        for i in 0..40 {
            let mut t = if i % 2 == 0 { vec![0u32, 1] } else { vec![] };
            if i % 3 == 0 {
                t.push(2);
            }
            txns.push(t);
        }
        TransactionDb::from_ids(3, txns)
    }

    fn params() -> MiningParams {
        MiningParams {
            confidence: 0.9,
            support_fraction: 0.1,
            max_level: 6,
            ..MiningParams::paper()
        }
    }

    #[test]
    fn finds_the_planted_pair() {
        let db = correlated_db();
        let mut counter = HorizontalCounter::new(&db);
        let out = run_bms(&db, &params(), &mut counter);
        assert!(
            out.sig.contains(&Itemset::from_ids([0, 1])),
            "planted pair not found; SIG = {:?}",
            out.sig
        );
    }

    #[test]
    fn independent_pairs_land_in_notsig() {
        let db = correlated_db();
        let mut counter = HorizontalCounter::new(&db);
        let out = run_bms(&db, &params(), &mut counter);
        // {0,2} is independent: must not be in SIG.
        assert!(!out.sig.contains(&Itemset::from_ids([0, 2])));
    }

    #[test]
    fn sig_sets_are_minimal() {
        let db = correlated_db();
        let mut counter = HorizontalCounter::new(&db);
        let out = run_bms(&db, &params(), &mut counter);
        for (i, a) in out.sig.iter().enumerate() {
            for b in &out.sig[i + 1..] {
                assert!(
                    !a.is_subset_of(b) && !b.is_subset_of(a),
                    "SIG contains nested sets {a} ⊆ {b}"
                );
            }
        }
    }

    #[test]
    fn metrics_count_tables() {
        let db = correlated_db();
        let mut counter = HorizontalCounter::new(&db);
        let out = run_bms(&db, &params(), &mut counter);
        // 3 items → 3 pairs at level 2, plus whatever level 3 considered.
        assert!(out.metrics.tables_built >= 3);
        // Level-batched counting: at most one scan per level, never more
        // scans than tables.
        assert!(out.metrics.db_scans >= 1);
        assert!(out.metrics.db_scans <= out.metrics.tables_built);
        assert!(out.metrics.db_scans <= out.metrics.max_level_reached as u64);
        assert!(out.metrics.candidates_generated >= out.metrics.tables_built);
        assert!(out.metrics.max_level_reached >= 2);
    }

    #[test]
    fn item_support_filter_prunes_basis() {
        let db = correlated_db(); // item 2 support ~1/3, items 0,1 = 1/2
        let p = MiningParams {
            min_item_support: 0.4,
            ..params()
        };
        let mut counter = HorizontalCounter::new(&db);
        let out = run_bms(&db, &p, &mut counter);
        assert_eq!(out.level1, vec![Item(0), Item(1)]);
    }

    #[test]
    fn empty_database_yields_nothing() {
        let db = TransactionDb::from_ids(4, Vec::<Vec<u32>>::new());
        let mut counter = HorizontalCounter::new(&db);
        let out = run_bms(&db, &params(), &mut counter);
        // With zero transactions every table is all-zeros: chi2 = 0, so
        // nothing is correlated.
        assert!(out.sig.is_empty());
    }
}

mod bms_plus {
    use super::*;

    /// Items 0–1 and 2–3 perfectly correlated pairs; price of item i = i+1.
    fn db() -> TransactionDb {
        let mut txns = Vec::new();
        for i in 0..60 {
            let mut t = Vec::new();
            if i % 2 == 0 {
                t.extend([0u32, 1]);
            }
            if i % 3 == 0 {
                t.extend([2, 3]);
            }
            txns.push(t);
        }
        TransactionDb::from_ids(4, txns)
    }

    fn query(constraints: ConstraintSet) -> CorrelationQuery {
        CorrelationQuery {
            params: MiningParams {
                confidence: 0.9,
                support_fraction: 0.1,
                max_level: 5,
                ..MiningParams::paper()
            },
            constraints,
        }
    }

    #[test]
    fn unconstrained_returns_all_minimal_correlated() {
        let db = db();
        let attrs = AttributeTable::with_identity_prices(4);
        let mut c = HorizontalCounter::new(&db);
        let r = run_bms_plus(&db, &attrs, &query(ConstraintSet::new()), &mut c).unwrap();
        assert!(r.contains(&Itemset::from_ids([0, 1])));
        assert!(r.contains(&Itemset::from_ids([2, 3])));
    }

    #[test]
    fn constraints_filter_answers() {
        let db = db();
        let attrs = AttributeTable::with_identity_prices(4);
        // max price ≤ 2 keeps only items {0, 1} (prices 1, 2).
        let cs = ConstraintSet::new().and(Constraint::max_le("price", 2.0));
        let mut c = HorizontalCounter::new(&db);
        let r = run_bms_plus(&db, &attrs, &query(cs), &mut c).unwrap();
        assert!(r.contains(&Itemset::from_ids([0, 1])));
        assert!(!r.contains(&Itemset::from_ids([2, 3])));
    }

    #[test]
    fn avg_constraint_is_rejected() {
        let db = db();
        let attrs = AttributeTable::with_identity_prices(4);
        let cs = ConstraintSet::new().and(Constraint::Avg {
            attr: "price".into(),
            cmp: ccs_constraints::Cmp::Le,
            value: 2.0,
        });
        let mut c = HorizontalCounter::new(&db);
        assert_eq!(
            run_bms_plus(&db, &attrs, &query(cs), &mut c),
            Err(MiningError::NonMonotoneConstraint)
        );
    }

    #[test]
    fn work_is_independent_of_constraints() {
        let db = db();
        let attrs = AttributeTable::with_identity_prices(4);
        let mut c1 = HorizontalCounter::new(&db);
        let r1 = run_bms_plus(&db, &attrs, &query(ConstraintSet::new()), &mut c1).unwrap();
        let cs = ConstraintSet::new().and(Constraint::max_le("price", 1.0));
        let mut c2 = HorizontalCounter::new(&db);
        let r2 = run_bms_plus(&db, &attrs, &query(cs), &mut c2).unwrap();
        assert_eq!(r1.metrics.tables_built, r2.metrics.tables_built);
    }
}

mod bms_plus_plus {
    use super::*;

    fn db() -> TransactionDb {
        let mut txns = Vec::new();
        for i in 0..60 {
            let mut t = Vec::new();
            if i % 2 == 0 {
                t.extend([0u32, 1]);
            }
            if i % 3 == 0 {
                t.extend([2, 3]);
            }
            if i % 5 == 0 {
                t.push(4);
            }
            txns.push(t);
        }
        TransactionDb::from_ids(5, txns)
    }

    fn query(constraints: ConstraintSet) -> CorrelationQuery {
        CorrelationQuery {
            params: MiningParams {
                confidence: 0.9,
                support_fraction: 0.1,
                max_level: 5,
                ..MiningParams::paper()
            },
            constraints,
        }
    }

    fn attrs() -> AttributeTable {
        AttributeTable::with_identity_prices(5)
    }

    /// BMS++ must agree with BMS+ on every constraint mix (Theorem 2.1).
    fn assert_agrees_with_bms_plus(cs: ConstraintSet) {
        let db = db();
        let attrs = attrs();
        let q = query(cs);
        let mut c1 = HorizontalCounter::new(&db);
        let plus = run_bms_plus(&db, &attrs, &q, &mut c1).unwrap();
        let mut c2 = HorizontalCounter::new(&db);
        let pp = run_bms_plus_plus(&db, &attrs, &q, &mut c2).unwrap();
        assert_eq!(
            plus.answers, pp.answers,
            "BMS+ vs BMS++ for {}",
            q.constraints
        );
        // BMS++ never considers more sets, up to the one verification
        // table a single-witness SIG candidate may cost (see the module
        // docs) — a bounded overhead of at most one table per answer.
        assert!(
            pp.metrics.tables_built <= plus.metrics.tables_built + pp.answers.len() as u64,
            "|BMS++| = {} > |BMS+| = {} + {} answers",
            pp.metrics.tables_built,
            plus.metrics.tables_built,
            pp.answers.len()
        );
    }

    #[test]
    fn agrees_unconstrained() {
        assert_agrees_with_bms_plus(ConstraintSet::new());
    }

    #[test]
    fn agrees_with_am_succinct_constraint() {
        assert_agrees_with_bms_plus(ConstraintSet::new().and(Constraint::max_le("price", 2.0)));
        assert_agrees_with_bms_plus(ConstraintSet::new().and(Constraint::max_le("price", 4.0)));
        assert_agrees_with_bms_plus(ConstraintSet::new().and(Constraint::min_ge("price", 3.0)));
    }

    #[test]
    fn agrees_with_am_nonsuccinct_constraint() {
        assert_agrees_with_bms_plus(ConstraintSet::new().and(Constraint::sum_le("price", 3.0)));
        assert_agrees_with_bms_plus(ConstraintSet::new().and(Constraint::sum_le("price", 7.0)));
    }

    #[test]
    fn agrees_with_monotone_succinct_constraint() {
        assert_agrees_with_bms_plus(ConstraintSet::new().and(Constraint::min_le("price", 1.0)));
        assert_agrees_with_bms_plus(ConstraintSet::new().and(Constraint::min_le("price", 3.0)));
        assert_agrees_with_bms_plus(ConstraintSet::new().and(Constraint::max_ge("price", 4.0)));
    }

    #[test]
    fn agrees_with_monotone_nonsuccinct_constraint() {
        assert_agrees_with_bms_plus(ConstraintSet::new().and(Constraint::sum_ge("price", 5.0)));
    }

    #[test]
    fn agrees_with_mixed_constraints() {
        assert_agrees_with_bms_plus(
            ConstraintSet::new()
                .and(Constraint::max_le("price", 4.0))
                .and(Constraint::sum_ge("price", 3.0)),
        );
        assert_agrees_with_bms_plus(
            ConstraintSet::new()
                .and(Constraint::sum_le("price", 7.0))
                .and(Constraint::min_le("price", 2.0)),
        );
    }

    #[test]
    fn succinct_am_constraint_prunes_tables() {
        let db = db();
        let attrs = attrs();
        // Only items 0,1 allowed: BMS++ builds 1 pair table (+ nothing
        // above), BMS+ builds all 10.
        let q = query(ConstraintSet::new().and(Constraint::max_le("price", 2.0)));
        let mut c2 = HorizontalCounter::new(&db);
        let pp = run_bms_plus_plus(&db, &attrs, &q, &mut c2).unwrap();
        let mut c1 = HorizontalCounter::new(&db);
        let plus = run_bms_plus(&db, &attrs, &q, &mut c1).unwrap();
        assert!(pp.metrics.tables_built < plus.metrics.tables_built / 2);
    }

    #[test]
    fn avg_constraint_is_rejected() {
        let db = db();
        let attrs = attrs();
        let q = query(ConstraintSet::new().and(Constraint::Avg {
            attr: "price".into(),
            cmp: ccs_constraints::Cmp::Le,
            value: 2.0,
        }));
        let mut c = HorizontalCounter::new(&db);
        assert_eq!(
            run_bms_plus_plus(&db, &attrs, &q, &mut c),
            Err(MiningError::NonMonotoneConstraint)
        );
    }
}

mod bms_star {
    use super::*;

    fn db() -> TransactionDb {
        let mut txns = Vec::new();
        for i in 0..60 {
            let mut t = Vec::new();
            if i % 2 == 0 {
                t.extend([0u32, 1]);
            }
            if i % 3 == 0 {
                t.extend([2, 3]);
            }
            if i % 5 == 0 {
                t.push(4);
            }
            txns.push(t);
        }
        TransactionDb::from_ids(5, txns)
    }

    fn query(constraints: ConstraintSet) -> CorrelationQuery {
        CorrelationQuery {
            params: MiningParams {
                confidence: 0.9,
                support_fraction: 0.1,
                max_level: 5,
                ..MiningParams::paper()
            },
            constraints,
        }
    }

    fn assert_agrees_with_naive(cs: ConstraintSet) {
        let db = db();
        let attrs = AttributeTable::with_identity_prices(5);
        let q = query(cs);
        let mut c1 = HorizontalCounter::new(&db);
        let star = run_bms_star(&db, &attrs, &q, &mut c1).unwrap();
        let mut c2 = HorizontalCounter::new(&db);
        let naive = run_naive(&db, &attrs, &q, Semantics::MinValid, &mut c2).unwrap();
        assert_eq!(
            star.answers, naive.answers,
            "BMS* vs naive for {}",
            q.constraints
        );
    }

    #[test]
    fn agrees_unconstrained() {
        assert_agrees_with_naive(ConstraintSet::new());
    }

    #[test]
    fn agrees_with_anti_monotone_constraints() {
        assert_agrees_with_naive(ConstraintSet::new().and(Constraint::max_le("price", 4.0)));
        assert_agrees_with_naive(ConstraintSet::new().and(Constraint::sum_le("price", 5.0)));
    }

    #[test]
    fn agrees_with_monotone_constraints() {
        assert_agrees_with_naive(ConstraintSet::new().and(Constraint::sum_ge("price", 5.0)));
        assert_agrees_with_naive(ConstraintSet::new().and(Constraint::min_le("price", 2.0)));
        assert_agrees_with_naive(ConstraintSet::new().and(Constraint::max_ge("price", 4.0)));
    }

    #[test]
    fn agrees_with_mixed_constraints() {
        assert_agrees_with_naive(
            ConstraintSet::new()
                .and(Constraint::max_le("price", 4.0))
                .and(Constraint::sum_ge("price", 4.0)),
        );
    }

    #[test]
    fn monotone_constraint_can_grow_answers() {
        // sum(price) ≥ 8 is unreachable for the correlated pairs
        // ({0,1}: 3; {2,3}: 7) — answers must be strict supersets.
        let db = db();
        let attrs = AttributeTable::with_identity_prices(5);
        let q = query(ConstraintSet::new().and(Constraint::sum_ge("price", 8.0)));
        let mut c = HorizontalCounter::new(&db);
        let star = run_bms_star(&db, &attrs, &q, &mut c).unwrap();
        for a in &star.answers {
            assert!(a.len() >= 3, "answer {a} should be a grown set");
        }
        let mut c2 = HorizontalCounter::new(&db);
        let naive = run_naive(&db, &attrs, &q, Semantics::MinValid, &mut c2).unwrap();
        assert_eq!(star.answers, naive.answers);
    }

    #[test]
    fn avg_constraint_is_rejected() {
        let db = db();
        let attrs = AttributeTable::with_identity_prices(5);
        let q = query(ConstraintSet::new().and(Constraint::Avg {
            attr: "price".into(),
            cmp: ccs_constraints::Cmp::Le,
            value: 2.0,
        }));
        let mut c = HorizontalCounter::new(&db);
        assert_eq!(
            run_bms_star(&db, &attrs, &q, &mut c),
            Err(MiningError::NonMonotoneConstraint)
        );
    }
}

mod bms_star_star {
    use super::*;

    fn db() -> TransactionDb {
        let mut txns = Vec::new();
        for i in 0..60 {
            let mut t = Vec::new();
            if i % 2 == 0 {
                t.extend([0u32, 1]);
            }
            if i % 3 == 0 {
                t.extend([2, 3]);
            }
            if i % 5 == 0 {
                t.push(4);
            }
            txns.push(t);
        }
        TransactionDb::from_ids(5, txns)
    }

    fn query(constraints: ConstraintSet) -> CorrelationQuery {
        CorrelationQuery {
            params: MiningParams {
                confidence: 0.9,
                support_fraction: 0.1,
                max_level: 5,
                ..MiningParams::paper()
            },
            constraints,
        }
    }

    fn assert_agrees(cs: ConstraintSet) {
        let db = db();
        let attrs = AttributeTable::with_identity_prices(5);
        let q = query(cs);
        let mut c1 = HorizontalCounter::new(&db);
        let ss = run_bms_star_star(&db, &attrs, &q, &mut c1).unwrap();
        let mut c2 = HorizontalCounter::new(&db);
        let naive = run_naive(&db, &attrs, &q, Semantics::MinValid, &mut c2).unwrap();
        assert_eq!(
            ss.answers, naive.answers,
            "BMS** vs naive for {}",
            q.constraints
        );
        let mut c3 = HorizontalCounter::new(&db);
        let star = run_bms_star(&db, &attrs, &q, &mut c3).unwrap();
        assert_eq!(
            ss.answers, star.answers,
            "BMS** vs BMS* for {}",
            q.constraints
        );
    }

    #[test]
    fn agrees_unconstrained() {
        assert_agrees(ConstraintSet::new());
    }

    #[test]
    fn agrees_with_anti_monotone_constraints() {
        assert_agrees(ConstraintSet::new().and(Constraint::max_le("price", 4.0)));
        assert_agrees(ConstraintSet::new().and(Constraint::sum_le("price", 5.0)));
        assert_agrees(ConstraintSet::new().and(Constraint::min_ge("price", 2.0)));
    }

    #[test]
    fn agrees_with_monotone_constraints() {
        assert_agrees(ConstraintSet::new().and(Constraint::min_le("price", 2.0)));
        assert_agrees(ConstraintSet::new().and(Constraint::max_ge("price", 4.0)));
        assert_agrees(ConstraintSet::new().and(Constraint::sum_ge("price", 5.0)));
        assert_agrees(ConstraintSet::new().and(Constraint::sum_ge("price", 8.0)));
    }

    #[test]
    fn agrees_with_mixed_constraints() {
        assert_agrees(
            ConstraintSet::new()
                .and(Constraint::max_le("price", 4.0))
                .and(Constraint::sum_ge("price", 4.0)),
        );
        assert_agrees(
            ConstraintSet::new()
                .and(Constraint::sum_le("price", 9.0))
                .and(Constraint::min_le("price", 3.0)),
        );
    }

    #[test]
    fn high_selectivity_makes_star_star_consider_more_sets() {
        // With a barely-selective monotone constraint, BMS** enumerates
        // the whole CT-supported region while BMS* stops at the
        // correlation border — the §3.3 crossover, seen from the BMS*
        // side.
        let db = db();
        let attrs = AttributeTable::with_identity_prices(5);
        let q = query(ConstraintSet::new().and(Constraint::min_le("price", 5.0)));
        let mut c1 = HorizontalCounter::new(&db);
        let ss = run_bms_star_star(&db, &attrs, &q, &mut c1).unwrap();
        let mut c2 = HorizontalCounter::new(&db);
        let star = run_bms_star(&db, &attrs, &q, &mut c2).unwrap();
        assert_eq!(ss.answers, star.answers);
        assert!(
            ss.metrics.tables_built >= star.metrics.tables_built,
            "expected |BMS**| ≥ |BMS*| at selectivity 1.0: {} vs {}",
            ss.metrics.tables_built,
            star.metrics.tables_built
        );
    }

    #[test]
    fn phase_2_answers_from_the_verdict_cache() {
        let db = db();
        let attrs = AttributeTable::with_identity_prices(5);
        let q = query(ConstraintSet::new());
        let mut c = HorizontalCounter::new(&db);
        let ss = run_bms_star_star(&db, &attrs, &q, &mut c).unwrap();
        // Every phase-2 evaluation revisits a set phase 1 judged, so the
        // sweep must be answered entirely from the verdict memo-cache...
        assert!(
            ss.metrics.cache_hits > 0,
            "phase 2 built tables instead of hitting the cache"
        );
        // ...and the counting layer itself never sees those hits: the
        // counter's raw table count equals the metrics' table count.
        assert_eq!(ss.metrics.tables_built, c.stats().tables_built);
        assert_eq!(c.stats().cache_hits, 0);
    }

    #[test]
    fn avg_constraint_is_rejected() {
        let db = db();
        let attrs = AttributeTable::with_identity_prices(5);
        let q = query(ConstraintSet::new().and(Constraint::Avg {
            attr: "price".into(),
            cmp: ccs_constraints::Cmp::Le,
            value: 2.0,
        }));
        let mut c = HorizontalCounter::new(&db);
        assert_eq!(
            run_bms_star_star(&db, &attrs, &q, &mut c),
            Err(MiningError::NonMonotoneConstraint)
        );
    }
}
