//! Minterm (contingency-cell) counting strategies.
//!
//! Every mining algorithm needs, for a candidate itemset `S`, the count of
//! each of the `2^|S|` minterms over `S` — the cells of its contingency
//! table. Two strategies are provided behind the [`MintermCounter`] trait:
//!
//! * [`HorizontalCounter`] scans the transaction database once per table,
//!   exactly as the paper's cost model assumes (work ∝ sets considered ×
//!   database size). The miners use this by default so measured runtimes
//!   follow the paper's analysis.
//! * [`VerticalCounter`] answers from per-item tid-sets, trading one
//!   up-front indexing pass for much cheaper per-table work. It exists to
//!   ablate the counting strategy (see DESIGN.md §5).
//!
//! Both implementations keep work counters so experiments can report *sets
//! considered* / *tables built* alongside wall-clock time.
//!
//! # Cooperative interruption
//!
//! Batch counting can run for a long time on a dense level, so every
//! counter also exposes a *guarded* batch entry point,
//! [`MintermCounter::minterm_counts_batch_guarded`], which consults a
//! [`CountProbe`] at interior loop boundaries (horizontal chunk loop,
//! vertical prefix-class loop, parallel fan-out) and abandons the batch
//! with [`BatchInterrupted`] when the probe asks it to stop. Work
//! statistics stay accurate across an abandoned batch: every *completed*
//! unit (scan, prefix class, table) is flushed into [`CountingStats`]
//! before the error returns. The unguarded methods are the guarded ones
//! driven by [`NoProbe`].

use crate::database::TransactionDb;
use crate::itemset::Itemset;
use crate::vertical::VerticalIndex;

/// How many transactions a horizontal scan processes between probe
/// checks. Small enough to stay responsive on multi-million-row
/// databases, large enough that the check is free.
pub(crate) const PROBE_CHUNK: usize = 1024;

/// Counting work statistics, shared by all counter implementations.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CountingStats {
    /// Number of contingency tables built (candidate sets counted).
    pub tables_built: u64,
    /// Number of full database passes performed (horizontal only).
    pub db_scans: u64,
    /// Total transactions visited across all scans.
    pub transactions_visited: u64,
    /// Total contingency cells computed (`2^k` per `k`-itemset table).
    pub cells_counted: u64,
    /// Evaluations answered from a verdict cache instead of a counter
    /// (tracked by `ccs-core`'s engine, not by the counters themselves).
    pub cache_hits: u64,
    /// Batches a vertical counter answered below its preferred rung of
    /// the degradation ladder (vertical-parallel → vertical →
    /// horizontal) after a scratch-arena memory budget tripped.
    pub degraded_batches: u64,
}

impl CountingStats {
    /// The work performed since `base` was captured (field-wise
    /// difference; all counters are monotone).
    pub fn since(&self, base: &CountingStats) -> CountingStats {
        CountingStats {
            tables_built: self.tables_built - base.tables_built,
            db_scans: self.db_scans - base.db_scans,
            transactions_visited: self.transactions_visited - base.transactions_visited,
            cells_counted: self.cells_counted - base.cells_counted,
            cache_hits: self.cache_hits - base.cache_hits,
            degraded_batches: self.degraded_batches - base.degraded_batches,
        }
    }

    /// A record charging `tables` contingency tables totalling `cells`
    /// cells — the delta every counter reports per answered batch.
    pub fn tables(tables_built: u64, cells_counted: u64) -> CountingStats {
        CountingStats {
            tables_built,
            cells_counted,
            ..CountingStats::default()
        }
    }
}

/// Field-wise accumulation — the one merge every counter and metrics
/// record routes through, and the inverse of [`CountingStats::since`].
impl std::ops::AddAssign<&CountingStats> for CountingStats {
    fn add_assign(&mut self, rhs: &CountingStats) {
        self.tables_built += rhs.tables_built;
        self.db_scans += rhs.db_scans;
        self.transactions_visited += rhs.transactions_visited;
        self.cells_counted += rhs.cells_counted;
        self.cache_hits += rhs.cache_hits;
        self.degraded_batches += rhs.degraded_batches;
    }
}

impl std::ops::AddAssign for CountingStats {
    fn add_assign(&mut self, rhs: CountingStats) {
        *self += &rhs;
    }
}

/// A cooperative-interruption hook consulted inside batch counting loops.
///
/// Implemented by `ccs-core`'s `RunGuard`; [`NoProbe`] is the no-op used
/// by the unguarded paths. Probes must be [`Sync`]: the parallel counter
/// shares one probe across its scoped workers.
pub trait CountProbe: Sync {
    /// `true` when counting should stop at the next boundary (deadline
    /// passed, budget exhausted, or externally cancelled).
    fn should_stop(&self) -> bool;

    /// Records `cells` contingency cells of completed work against the
    /// probe's work budget; returns `true` when the budget is now
    /// exhausted (the completed work is kept, further work should stop).
    fn charge(&self, cells: u64) -> bool;

    /// The memory budget, in bytes, for a vertical counter's scratch
    /// arena, or `None` for unlimited.
    fn arena_budget_bytes(&self) -> Option<usize> {
        None
    }

    /// Notifies the probe that a memory budget was tripped by a counter
    /// that has no cheaper strategy to degrade to.
    fn note_memory_trip(&self) {}

    /// `true` when this probe can never interrupt (no deadline, work
    /// budget, memory budget, or cancellation source). Parallel engines
    /// use this to choose a blocking wait over a poll-and-check loop
    /// while draining worker results. Defaults to `false` — assuming a
    /// probe may trip is always sound, just marginally slower.
    fn is_inert(&self) -> bool {
        false
    }
}

/// The probe that never interrupts: unguarded counting.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoProbe;

impl CountProbe for NoProbe {
    fn should_stop(&self) -> bool {
        false
    }
    fn charge(&self, _cells: u64) -> bool {
        false
    }
    fn is_inert(&self) -> bool {
        true
    }
}

/// A batch was abandoned at a probe checkpoint. Carries the work that
/// *did* complete, so callers can keep statistics accurate; the partial
/// count vectors themselves are discarded (a half-counted table is not a
/// sound table).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchInterrupted {
    /// Tables fully counted before the interrupt.
    pub tables_completed: u64,
    /// Contingency cells of those completed tables.
    pub cells_completed: u64,
}

/// A strategy for counting the `2^k` minterms of an itemset.
pub trait MintermCounter {
    /// Counts all `2^|set|` minterm cells. Cell indexing follows
    /// [`VerticalIndex::minterm_counts`]: bit `j` of the cell index is 1 iff
    /// the `j`-th smallest item of `set` is present.
    fn minterm_counts(&mut self, set: &Itemset) -> Vec<u64>;

    /// Counts a whole level of candidates, returning one `2^k` count
    /// vector per candidate in input order.
    ///
    /// The default implementation counts each set independently;
    /// implementations override it to share work across the level
    /// (a single scan for horizontal counters, prefix-shared tid-set
    /// recursion for vertical ones).
    fn minterm_counts_batch(&mut self, sets: &[Itemset]) -> Vec<Vec<u64>> {
        sets.iter().map(|s| self.minterm_counts(s)).collect()
    }

    /// [`minterm_counts_batch`](Self::minterm_counts_batch) with
    /// cooperative interruption: `probe` is consulted at interior loop
    /// boundaries and the batch is abandoned with [`BatchInterrupted`]
    /// when it asks to stop. Completed work is still recorded in
    /// [`stats`](Self::stats).
    ///
    /// The default implementation checks the probe between sets.
    fn minterm_counts_batch_guarded(
        &mut self,
        sets: &[Itemset],
        probe: &dyn CountProbe,
    ) -> Result<Vec<Vec<u64>>, BatchInterrupted> {
        let mut out = Vec::with_capacity(sets.len());
        let mut done = BatchInterrupted::default();
        for set in sets {
            if probe.should_stop() {
                return Err(done);
            }
            out.push(self.minterm_counts(set));
            let cells = 1u64 << set.len();
            done.tables_completed += 1;
            done.cells_completed += cells;
            if probe.charge(cells) {
                return Err(done);
            }
        }
        Ok(out)
    }

    /// Number of transactions in the underlying database.
    fn n_transactions(&self) -> usize;

    /// Work performed so far.
    fn stats(&self) -> CountingStats;
}

/// Forwarding impl so strategy-selection code can hand around a
/// `Box<dyn MintermCounter>` and still call everything through the
/// trait. Each method forwards explicitly — inheriting the trait's
/// per-set defaults here would silently discard the boxed counter's
/// batch sharing and guarded-interrupt behaviour.
impl MintermCounter for Box<dyn MintermCounter + '_> {
    fn minterm_counts(&mut self, set: &Itemset) -> Vec<u64> {
        (**self).minterm_counts(set)
    }

    fn minterm_counts_batch(&mut self, sets: &[Itemset]) -> Vec<Vec<u64>> {
        (**self).minterm_counts_batch(sets)
    }

    fn minterm_counts_batch_guarded(
        &mut self,
        sets: &[Itemset],
        probe: &dyn CountProbe,
    ) -> Result<Vec<Vec<u64>>, BatchInterrupted> {
        (**self).minterm_counts_batch_guarded(sets, probe)
    }

    fn n_transactions(&self) -> usize {
        (**self).n_transactions()
    }

    fn stats(&self) -> CountingStats {
        (**self).stats()
    }
}

/// One guarded horizontal scan over `db`, updating every candidate's
/// table per transaction. Shared by [`HorizontalCounter`] and the
/// degraded path of [`VerticalCounter`]. Flushes `stats` for the scan's
/// completed work whether or not the scan finishes: `db_scans` counts the
/// started scan, `transactions_visited` the rows actually read, and
/// `tables_built`/`cells_counted` only move when the scan completes
/// (a half-scanned table was never built).
pub(crate) fn horizontal_batch_guarded(
    db: &TransactionDb,
    sets: &[Itemset],
    probe: &dyn CountProbe,
    stats: &mut CountingStats,
) -> Result<Vec<Vec<u64>>, BatchInterrupted> {
    if sets.is_empty() {
        return Ok(Vec::new());
    }
    let mut tables: Vec<Vec<u64>> = sets.iter().map(|s| vec![0u64; 1usize << s.len()]).collect();
    stats.db_scans += 1;
    let mut visited_in_chunk = 0usize;
    for t in db.transactions() {
        if visited_in_chunk == PROBE_CHUNK {
            visited_in_chunk = 0;
            if probe.should_stop() {
                return Err(BatchInterrupted::default());
            }
        }
        visited_in_chunk += 1;
        stats.transactions_visited += 1;
        for (set, table) in sets.iter().zip(tables.iter_mut()) {
            table[cell_index(t, set)] += 1;
        }
    }
    let cells: u64 = tables.iter().map(|t| t.len() as u64).sum();
    *stats += CountingStats::tables(sets.len() as u64, cells);
    // The scan completed: the tables are sound and the caller keeps them
    // even if this charge exhausts the budget — the *next* checkpoint
    // observes the exhaustion.
    let _ = probe.charge(cells);
    Ok(tables)
}

/// Paper-faithful counter: one database scan per contingency table.
#[derive(Debug)]
pub struct HorizontalCounter<'a> {
    db: &'a TransactionDb,
    stats: CountingStats,
}

impl<'a> HorizontalCounter<'a> {
    /// Creates a counter over `db`.
    pub fn new(db: &'a TransactionDb) -> Self {
        HorizontalCounter {
            db,
            stats: CountingStats::default(),
        }
    }
}

impl MintermCounter for HorizontalCounter<'_> {
    fn minterm_counts(&mut self, set: &Itemset) -> Vec<u64> {
        let mut counts = vec![0u64; 1usize << set.len()];
        for t in self.db.transactions() {
            counts[cell_index(t, set)] += 1;
            self.stats.transactions_visited += 1;
        }
        self.stats += CountingStats {
            db_scans: 1,
            ..CountingStats::tables(1, counts.len() as u64)
        };
        counts
    }

    /// Counts minterms for a whole level of candidates in a *single* scan,
    /// as Apriori-style implementations do: each transaction updates every
    /// candidate's table.
    fn minterm_counts_batch(&mut self, sets: &[Itemset]) -> Vec<Vec<u64>> {
        match horizontal_batch_guarded(self.db, sets, &NoProbe, &mut self.stats) {
            Ok(tables) => tables,
            Err(_) => unreachable!("NoProbe never interrupts"),
        }
    }

    fn minterm_counts_batch_guarded(
        &mut self,
        sets: &[Itemset],
        probe: &dyn CountProbe,
    ) -> Result<Vec<Vec<u64>>, BatchInterrupted> {
        horizontal_batch_guarded(self.db, sets, probe, &mut self.stats)
    }

    fn n_transactions(&self) -> usize {
        self.db.len()
    }

    fn stats(&self) -> CountingStats {
        self.stats
    }
}

/// Tid-set-based counter: builds a vertical index once, then answers each
/// table by recursive tid-set splitting.
///
/// Keeps a reference to the source database so it can *degrade
/// gracefully*: when a [`CountProbe`] memory budget is smaller than the
/// scratch arena a batch needs, the counter permanently falls back to
/// guarded horizontal scans (recorded in
/// [`CountingStats::degraded_batches`]) instead of aborting the run.
#[derive(Debug)]
pub struct VerticalCounter<'a> {
    db: &'a TransactionDb,
    index: VerticalIndex,
    stats: CountingStats,
    degraded: bool,
}

impl<'a> VerticalCounter<'a> {
    /// Builds the vertical index over `db` (one scan) and wraps it.
    pub fn new(db: &'a TransactionDb) -> Self {
        let index = VerticalIndex::build(db);
        VerticalCounter {
            db,
            index,
            stats: CountingStats {
                db_scans: 1,
                ..CountingStats::default()
            },
            degraded: false,
        }
    }

    /// Direct access to the underlying index.
    pub fn index(&self) -> &VerticalIndex {
        &self.index
    }

    /// Mutable access to the underlying index (counting methods need
    /// `&mut` for the scratch arena).
    pub fn index_mut(&mut self) -> &mut VerticalIndex {
        &mut self.index
    }

    /// `true` once a memory budget has forced the counter onto the
    /// horizontal fallback path (sticky for the rest of the run).
    pub fn is_degraded(&self) -> bool {
        self.degraded
    }
}

impl MintermCounter for VerticalCounter<'_> {
    fn minterm_counts(&mut self, set: &Itemset) -> Vec<u64> {
        self.stats += CountingStats::tables(1, 1u64 << set.len());
        self.index.minterm_counts(set)
    }

    /// Batch counting with Eclat-style prefix sharing; see
    /// [`VerticalIndex::minterm_counts_batch`].
    fn minterm_counts_batch(&mut self, sets: &[Itemset]) -> Vec<Vec<u64>> {
        match self.minterm_counts_batch_guarded(sets, &NoProbe) {
            Ok(tables) => tables,
            Err(_) => unreachable!("NoProbe never interrupts"),
        }
    }

    fn minterm_counts_batch_guarded(
        &mut self,
        sets: &[Itemset],
        probe: &dyn CountProbe,
    ) -> Result<Vec<Vec<u64>>, BatchInterrupted> {
        if sets.is_empty() {
            return Ok(Vec::new());
        }
        // Degradation ladder: if the scratch arena this batch needs would
        // exceed the probe's memory budget, answer this and every later
        // batch with horizontal scans — the strategies agree exactly
        // (counting-equivalence property tests), only the cost model
        // changes.
        if !self.degraded {
            if let Some(budget) = probe.arena_budget_bytes() {
                let depths = sets
                    .iter()
                    .map(|s| s.len().saturating_sub(2))
                    .max()
                    .unwrap_or(0);
                if VerticalIndex::scratch_bytes(self.index.n_transactions(), depths) > budget {
                    self.degraded = true;
                }
            }
        }
        if self.degraded {
            self.stats.degraded_batches += 1;
            return horizontal_batch_guarded(self.db, sets, probe, &mut self.stats);
        }
        match self.index.minterm_counts_batch_guarded(sets, probe) {
            Ok(tables) => {
                self.stats += CountingStats::tables(
                    sets.len() as u64,
                    sets.iter().map(|s| 1u64 << s.len()).sum::<u64>(),
                );
                Ok(tables)
            }
            Err(partial) => {
                self.stats +=
                    CountingStats::tables(partial.tables_completed, partial.cells_completed);
                Err(partial)
            }
        }
    }

    fn n_transactions(&self) -> usize {
        self.index.n_transactions()
    }

    fn stats(&self) -> CountingStats {
        self.stats
    }
}

/// Computes which contingency cell a transaction falls in for `set`:
/// bit `j` set iff the `j`-th smallest item of `set` occurs in `t`.
#[inline]
pub fn cell_index(t: &[crate::item::Item], set: &Itemset) -> usize {
    let mut idx = 0usize;
    let mut ti = 0usize;
    for (j, &item) in set.items().iter().enumerate() {
        while ti < t.len() && t[ti] < item {
            ti += 1;
        }
        if ti < t.len() && t[ti] == item {
            idx |= 1 << j;
            ti += 1;
        }
    }
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::item::Item;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn stats_add_assign_sums_every_field() {
        let a = CountingStats {
            tables_built: 1,
            db_scans: 2,
            transactions_visited: 3,
            cells_counted: 4,
            cache_hits: 5,
            degraded_batches: 6,
        };
        let b = CountingStats {
            tables_built: 10,
            db_scans: 20,
            transactions_visited: 30,
            cells_counted: 40,
            cache_hits: 50,
            degraded_batches: 60,
        };
        let mut sum = a;
        sum += b;
        assert_eq!(sum.tables_built, 11);
        assert_eq!(sum.db_scans, 22);
        assert_eq!(sum.transactions_visited, 33);
        assert_eq!(sum.cells_counted, 44);
        assert_eq!(sum.cache_hits, 55);
        assert_eq!(sum.degraded_batches, 66);
        // `since` is the merge's inverse, field for field.
        assert_eq!(sum.since(&a), b);
        assert_eq!(sum.since(&b), a);
        // The by-ref form agrees with the by-value form.
        let mut by_ref = a;
        by_ref += &b;
        assert_eq!(by_ref, sum);
    }

    #[test]
    fn stats_tables_charges_only_tables_and_cells() {
        assert_eq!(
            CountingStats::tables(3, 24),
            CountingStats {
                tables_built: 3,
                cells_counted: 24,
                ..CountingStats::default()
            }
        );
    }

    fn db() -> TransactionDb {
        TransactionDb::from_ids(
            4,
            vec![
                vec![0, 1, 2],
                vec![0, 1],
                vec![0, 2],
                vec![1, 2],
                vec![2],
                vec![],
                vec![3],
            ],
        )
    }

    /// A probe that stops after a fixed number of `charge` calls and can
    /// also stop unconditionally.
    struct BudgetProbe {
        budget_cells: u64,
        spent: AtomicU64,
        stop_now: bool,
    }

    impl BudgetProbe {
        fn cells(budget_cells: u64) -> Self {
            BudgetProbe {
                budget_cells,
                spent: AtomicU64::new(0),
                stop_now: false,
            }
        }
        fn stopped() -> Self {
            BudgetProbe {
                budget_cells: u64::MAX,
                spent: AtomicU64::new(0),
                stop_now: true,
            }
        }
    }

    impl CountProbe for BudgetProbe {
        fn should_stop(&self) -> bool {
            self.stop_now || self.spent.load(Ordering::Relaxed) >= self.budget_cells
        }
        fn charge(&self, cells: u64) -> bool {
            self.spent.fetch_add(cells, Ordering::Relaxed) + cells >= self.budget_cells
        }
    }

    #[test]
    fn cell_index_matches_membership() {
        let set = Itemset::from_ids([1, 3]);
        let t: Vec<Item> = [0u32, 1, 2].iter().map(|&i| Item(i)).collect();
        assert_eq!(cell_index(&t, &set), 0b01); // item 1 present, item 3 absent
        let t2: Vec<Item> = [3u32].iter().map(|&i| Item(i)).collect();
        assert_eq!(cell_index(&t2, &set), 0b10);
        assert_eq!(cell_index(&[], &set), 0);
    }

    #[test]
    fn horizontal_and_vertical_agree() {
        let d = db();
        let mut h = HorizontalCounter::new(&d);
        let mut v = VerticalCounter::new(&d);
        for set in [
            Itemset::from_ids([0]),
            Itemset::from_ids([0, 1]),
            Itemset::from_ids([1, 2]),
            Itemset::from_ids([0, 1, 2]),
            Itemset::from_ids([0, 1, 2, 3]),
        ] {
            assert_eq!(
                h.minterm_counts(&set),
                v.minterm_counts(&set),
                "counter mismatch for {set}"
            );
        }
    }

    #[test]
    fn counts_sum_to_database_size() {
        let d = db();
        let mut h = HorizontalCounter::new(&d);
        let counts = h.minterm_counts(&Itemset::from_ids([0, 1, 2]));
        assert_eq!(counts.iter().sum::<u64>() as usize, d.len());
    }

    #[test]
    fn horizontal_stats_track_scans() {
        let d = db();
        let mut h = HorizontalCounter::new(&d);
        h.minterm_counts(&Itemset::from_ids([0]));
        h.minterm_counts(&Itemset::from_ids([1]));
        let s = h.stats();
        assert_eq!(s.db_scans, 2);
        assert_eq!(s.tables_built, 2);
        assert_eq!(s.transactions_visited, 2 * d.len() as u64);
    }

    #[test]
    fn batch_counting_is_one_scan() {
        let d = db();
        let sets = vec![Itemset::from_ids([0, 1]), Itemset::from_ids([1, 2])];
        let mut h = HorizontalCounter::new(&d);
        let batch = h.minterm_counts_batch(&sets);
        assert_eq!(h.stats().db_scans, 1);
        assert_eq!(h.stats().tables_built, 2);
        let mut h2 = HorizontalCounter::new(&d);
        assert_eq!(batch[0], h2.minterm_counts(&sets[0]));
        assert_eq!(batch[1], h2.minterm_counts(&sets[1]));
    }

    #[test]
    fn vertical_counts_index_build_as_one_scan() {
        let d = db();
        let mut v = VerticalCounter::new(&d);
        v.minterm_counts(&Itemset::from_ids([0, 1]));
        assert_eq!(v.stats().db_scans, 1);
        assert_eq!(v.stats().tables_built, 1);
        assert_eq!(v.stats().cells_counted, 4);
    }

    #[test]
    fn all_batch_paths_agree_with_singles() {
        let d = db();
        let sets = vec![
            Itemset::from_ids([0, 1]),
            Itemset::from_ids([0, 2]),
            Itemset::from_ids([1, 2]),
            Itemset::from_ids([0, 1, 2]),
            Itemset::from_ids([3]),
        ];
        let expected: Vec<Vec<u64>> = {
            let mut h = HorizontalCounter::new(&d);
            sets.iter().map(|s| h.minterm_counts(s)).collect()
        };
        let mut h = HorizontalCounter::new(&d);
        assert_eq!(h.minterm_counts_batch(&sets), expected, "horizontal batch");
        let mut v = VerticalCounter::new(&d);
        assert_eq!(v.minterm_counts_batch(&sets), expected, "vertical batch");
    }

    #[test]
    fn default_trait_batch_loops_over_singles() {
        // A counter that does not override the batch method gets the
        // per-candidate default.
        struct Wrapper<'a>(HorizontalCounter<'a>);
        impl MintermCounter for Wrapper<'_> {
            fn minterm_counts(&mut self, set: &Itemset) -> Vec<u64> {
                self.0.minterm_counts(set)
            }
            fn n_transactions(&self) -> usize {
                self.0.n_transactions()
            }
            fn stats(&self) -> CountingStats {
                self.0.stats()
            }
        }
        let d = db();
        let sets = vec![Itemset::from_ids([0, 1]), Itemset::from_ids([1, 2])];
        let mut w = Wrapper(HorizontalCounter::new(&d));
        let batch = w.minterm_counts_batch(&sets);
        assert_eq!(w.stats().db_scans, 2, "default batch is one scan per set");
        let mut h = HorizontalCounter::new(&d);
        assert_eq!(batch, h.minterm_counts_batch(&sets));
    }

    #[test]
    fn stats_since_diffs_fieldwise() {
        let d = db();
        let mut h = HorizontalCounter::new(&d);
        h.minterm_counts(&Itemset::from_ids([0]));
        let base = h.stats();
        h.minterm_counts(&Itemset::from_ids([0, 1]));
        let delta = h.stats().since(&base);
        assert_eq!(delta.tables_built, 1);
        assert_eq!(delta.db_scans, 1);
        assert_eq!(delta.cells_counted, 4);
        assert_eq!(delta.transactions_visited, d.len() as u64);
    }

    #[test]
    fn guarded_batch_with_noprobe_matches_unguarded() {
        let d = db();
        let sets = vec![
            Itemset::from_ids([0, 1]),
            Itemset::from_ids([1, 2]),
            Itemset::from_ids([0, 1, 2]),
        ];
        let mut h1 = HorizontalCounter::new(&d);
        let expected = h1.minterm_counts_batch(&sets);
        let mut h2 = HorizontalCounter::new(&d);
        assert_eq!(
            h2.minterm_counts_batch_guarded(&sets, &NoProbe).unwrap(),
            expected
        );
        assert_eq!(h1.stats(), h2.stats());
        let mut v = VerticalCounter::new(&d);
        assert_eq!(
            v.minterm_counts_batch_guarded(&sets, &NoProbe).unwrap(),
            expected
        );
    }

    #[test]
    fn stopped_probe_interrupts_horizontal_batch_and_flushes_stats() {
        let d = db();
        let sets = vec![Itemset::from_ids([0, 1]), Itemset::from_ids([1, 2])];
        let mut h = HorizontalCounter::new(&d);
        // The probe is pre-stopped, but the first check happens after the
        // first chunk; this db is tiny, so the scan completes. Use a
        // pre-stopped probe against the *vertical* per-class loop (which
        // checks before each class) for the immediate-stop case.
        let mut v = VerticalCounter::new(&d);
        let err = v
            .minterm_counts_batch_guarded(&sets, &BudgetProbe::stopped())
            .unwrap_err();
        assert_eq!(err.tables_completed, 0);
        assert_eq!(v.stats().tables_built, 0, "no completed class, no tables");
        // Horizontal: budget of 1 cell trips after the first scan of the
        // batch completes (charge happens at scan end), so the whole
        // level's tables are still returned.
        let got = h
            .minterm_counts_batch_guarded(&sets, &BudgetProbe::cells(1))
            .unwrap();
        assert_eq!(got.len(), 2);
    }

    #[test]
    fn vertical_budget_interrupt_keeps_completed_class_stats() {
        let d = db();
        // Two prefix classes: pairs ([] prefix is shared — one class) and
        // a triple class. A 1-cell budget stops after the first class.
        let sets = vec![
            Itemset::from_ids([0, 1]),
            Itemset::from_ids([0, 1, 2]),
            Itemset::from_ids([1, 2, 3]),
        ];
        let mut v = VerticalCounter::new(&d);
        let err = v
            .minterm_counts_batch_guarded(&sets, &BudgetProbe::cells(1))
            .unwrap_err();
        assert!(err.tables_completed >= 1, "first class completed");
        assert_eq!(v.stats().tables_built, err.tables_completed);
        assert_eq!(v.stats().cells_counted, err.cells_completed);
    }

    #[test]
    fn vertical_degrades_to_horizontal_under_arena_pressure() {
        struct TinyArena;
        impl CountProbe for TinyArena {
            fn should_stop(&self) -> bool {
                false
            }
            fn charge(&self, _cells: u64) -> bool {
                false
            }
            fn arena_budget_bytes(&self) -> Option<usize> {
                Some(1)
            }
        }
        let d = db();
        let pairs = vec![Itemset::from_ids([0, 1])];
        let triples = vec![Itemset::from_ids([0, 1, 2])];
        let mut v = VerticalCounter::new(&d);
        // Pairs need no scratch arena: still vertical.
        v.minterm_counts_batch_guarded(&pairs, &TinyArena).unwrap();
        assert!(!v.is_degraded());
        // A triple needs one scratch depth > 1 byte: degrade, answer
        // horizontally, and stay degraded.
        let got = v
            .minterm_counts_batch_guarded(&triples, &TinyArena)
            .unwrap();
        assert!(v.is_degraded());
        assert_eq!(v.stats().degraded_batches, 1);
        let mut h = HorizontalCounter::new(&d);
        assert_eq!(got, h.minterm_counts_batch(&triples));
        v.minterm_counts_batch_guarded(&pairs, &TinyArena).unwrap();
        assert_eq!(v.stats().degraded_batches, 2, "degradation is sticky");
    }
}
