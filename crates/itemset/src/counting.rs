//! Minterm (contingency-cell) counting strategies.
//!
//! Every mining algorithm needs, for a candidate itemset `S`, the count of
//! each of the `2^|S|` minterms over `S` — the cells of its contingency
//! table. Two strategies are provided behind the [`MintermCounter`] trait:
//!
//! * [`HorizontalCounter`] scans the transaction database once per table,
//!   exactly as the paper's cost model assumes (work ∝ sets considered ×
//!   database size). The miners use this by default so measured runtimes
//!   follow the paper's analysis.
//! * [`VerticalCounter`] answers from per-item tid-sets, trading one
//!   up-front indexing pass for much cheaper per-table work. It exists to
//!   ablate the counting strategy (see DESIGN.md §5).
//!
//! Both implementations keep work counters so experiments can report *sets
//! considered* / *tables built* alongside wall-clock time.

use crate::database::TransactionDb;
use crate::itemset::Itemset;
use crate::vertical::VerticalIndex;

/// Counting work statistics, shared by all counter implementations.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CountingStats {
    /// Number of contingency tables built (candidate sets counted).
    pub tables_built: u64,
    /// Number of full database passes performed (horizontal only).
    pub db_scans: u64,
    /// Total transactions visited across all scans.
    pub transactions_visited: u64,
    /// Total contingency cells computed (`2^k` per `k`-itemset table).
    pub cells_counted: u64,
    /// Evaluations answered from a verdict cache instead of a counter
    /// (tracked by `ccs-core`'s engine, not by the counters themselves).
    pub cache_hits: u64,
}

impl CountingStats {
    /// The work performed since `base` was captured (field-wise
    /// difference; all counters are monotone).
    pub fn since(&self, base: &CountingStats) -> CountingStats {
        CountingStats {
            tables_built: self.tables_built - base.tables_built,
            db_scans: self.db_scans - base.db_scans,
            transactions_visited: self.transactions_visited - base.transactions_visited,
            cells_counted: self.cells_counted - base.cells_counted,
            cache_hits: self.cache_hits - base.cache_hits,
        }
    }
}

/// A strategy for counting the `2^k` minterms of an itemset.
pub trait MintermCounter {
    /// Counts all `2^|set|` minterm cells. Cell indexing follows
    /// [`VerticalIndex::minterm_counts`]: bit `j` of the cell index is 1 iff
    /// the `j`-th smallest item of `set` is present.
    fn minterm_counts(&mut self, set: &Itemset) -> Vec<u64>;

    /// Counts a whole level of candidates, returning one `2^k` count
    /// vector per candidate in input order.
    ///
    /// The default implementation counts each set independently;
    /// implementations override it to share work across the level
    /// (a single scan for horizontal counters, prefix-shared tid-set
    /// recursion for vertical ones).
    fn minterm_counts_batch(&mut self, sets: &[Itemset]) -> Vec<Vec<u64>> {
        sets.iter().map(|s| self.minterm_counts(s)).collect()
    }

    /// Number of transactions in the underlying database.
    fn n_transactions(&self) -> usize;

    /// Work performed so far.
    fn stats(&self) -> CountingStats;
}

/// Paper-faithful counter: one database scan per contingency table.
#[derive(Debug)]
pub struct HorizontalCounter<'a> {
    db: &'a TransactionDb,
    stats: CountingStats,
}

impl<'a> HorizontalCounter<'a> {
    /// Creates a counter over `db`.
    pub fn new(db: &'a TransactionDb) -> Self {
        HorizontalCounter {
            db,
            stats: CountingStats::default(),
        }
    }
}

impl MintermCounter for HorizontalCounter<'_> {
    fn minterm_counts(&mut self, set: &Itemset) -> Vec<u64> {
        let mut counts = vec![0u64; 1usize << set.len()];
        for t in self.db.transactions() {
            counts[cell_index(t, set)] += 1;
            self.stats.transactions_visited += 1;
        }
        self.stats.db_scans += 1;
        self.stats.tables_built += 1;
        self.stats.cells_counted += counts.len() as u64;
        counts
    }

    /// Counts minterms for a whole level of candidates in a *single* scan,
    /// as Apriori-style implementations do: each transaction updates every
    /// candidate's table.
    fn minterm_counts_batch(&mut self, sets: &[Itemset]) -> Vec<Vec<u64>> {
        if sets.is_empty() {
            return Vec::new();
        }
        let mut tables: Vec<Vec<u64>> =
            sets.iter().map(|s| vec![0u64; 1usize << s.len()]).collect();
        for t in self.db.transactions() {
            self.stats.transactions_visited += 1;
            for (set, table) in sets.iter().zip(tables.iter_mut()) {
                table[cell_index(t, set)] += 1;
            }
        }
        self.stats.db_scans += 1;
        self.stats.tables_built += sets.len() as u64;
        self.stats.cells_counted += tables.iter().map(|t| t.len() as u64).sum::<u64>();
        tables
    }

    fn n_transactions(&self) -> usize {
        self.db.len()
    }

    fn stats(&self) -> CountingStats {
        self.stats
    }
}

/// Tid-set-based counter: builds a vertical index once, then answers each
/// table by recursive tid-set splitting.
#[derive(Debug)]
pub struct VerticalCounter {
    index: VerticalIndex,
    stats: CountingStats,
}

impl VerticalCounter {
    /// Builds the vertical index over `db` (one scan) and wraps it.
    pub fn new(db: &TransactionDb) -> Self {
        let index = VerticalIndex::build(db);
        VerticalCounter {
            index,
            stats: CountingStats {
                db_scans: 1,
                ..CountingStats::default()
            },
        }
    }

    /// Direct access to the underlying index.
    pub fn index(&self) -> &VerticalIndex {
        &self.index
    }

    /// Mutable access to the underlying index (counting methods need
    /// `&mut` for the scratch arena).
    pub fn index_mut(&mut self) -> &mut VerticalIndex {
        &mut self.index
    }
}

impl MintermCounter for VerticalCounter {
    fn minterm_counts(&mut self, set: &Itemset) -> Vec<u64> {
        self.stats.tables_built += 1;
        self.stats.cells_counted += 1u64 << set.len();
        self.index.minterm_counts(set)
    }

    /// Batch counting with Eclat-style prefix sharing; see
    /// [`VerticalIndex::minterm_counts_batch`].
    fn minterm_counts_batch(&mut self, sets: &[Itemset]) -> Vec<Vec<u64>> {
        self.stats.tables_built += sets.len() as u64;
        self.stats.cells_counted += sets.iter().map(|s| 1u64 << s.len()).sum::<u64>();
        self.index.minterm_counts_batch(sets)
    }

    fn n_transactions(&self) -> usize {
        self.index.n_transactions()
    }

    fn stats(&self) -> CountingStats {
        self.stats
    }
}

/// Computes which contingency cell a transaction falls in for `set`:
/// bit `j` set iff the `j`-th smallest item of `set` occurs in `t`.
#[inline]
pub fn cell_index(t: &[crate::item::Item], set: &Itemset) -> usize {
    let mut idx = 0usize;
    let mut ti = 0usize;
    for (j, &item) in set.items().iter().enumerate() {
        while ti < t.len() && t[ti] < item {
            ti += 1;
        }
        if ti < t.len() && t[ti] == item {
            idx |= 1 << j;
            ti += 1;
        }
    }
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::item::Item;

    fn db() -> TransactionDb {
        TransactionDb::from_ids(
            4,
            vec![
                vec![0, 1, 2],
                vec![0, 1],
                vec![0, 2],
                vec![1, 2],
                vec![2],
                vec![],
                vec![3],
            ],
        )
    }

    #[test]
    fn cell_index_matches_membership() {
        let set = Itemset::from_ids([1, 3]);
        let t: Vec<Item> = [0u32, 1, 2].iter().map(|&i| Item(i)).collect();
        assert_eq!(cell_index(&t, &set), 0b01); // item 1 present, item 3 absent
        let t2: Vec<Item> = [3u32].iter().map(|&i| Item(i)).collect();
        assert_eq!(cell_index(&t2, &set), 0b10);
        assert_eq!(cell_index(&[], &set), 0);
    }

    #[test]
    fn horizontal_and_vertical_agree() {
        let d = db();
        let mut h = HorizontalCounter::new(&d);
        let mut v = VerticalCounter::new(&d);
        for set in [
            Itemset::from_ids([0]),
            Itemset::from_ids([0, 1]),
            Itemset::from_ids([1, 2]),
            Itemset::from_ids([0, 1, 2]),
            Itemset::from_ids([0, 1, 2, 3]),
        ] {
            assert_eq!(
                h.minterm_counts(&set),
                v.minterm_counts(&set),
                "counter mismatch for {set}"
            );
        }
    }

    #[test]
    fn counts_sum_to_database_size() {
        let d = db();
        let mut h = HorizontalCounter::new(&d);
        let counts = h.minterm_counts(&Itemset::from_ids([0, 1, 2]));
        assert_eq!(counts.iter().sum::<u64>() as usize, d.len());
    }

    #[test]
    fn horizontal_stats_track_scans() {
        let d = db();
        let mut h = HorizontalCounter::new(&d);
        h.minterm_counts(&Itemset::from_ids([0]));
        h.minterm_counts(&Itemset::from_ids([1]));
        let s = h.stats();
        assert_eq!(s.db_scans, 2);
        assert_eq!(s.tables_built, 2);
        assert_eq!(s.transactions_visited, 2 * d.len() as u64);
    }

    #[test]
    fn batch_counting_is_one_scan() {
        let d = db();
        let sets = vec![Itemset::from_ids([0, 1]), Itemset::from_ids([1, 2])];
        let mut h = HorizontalCounter::new(&d);
        let batch = h.minterm_counts_batch(&sets);
        assert_eq!(h.stats().db_scans, 1);
        assert_eq!(h.stats().tables_built, 2);
        let mut h2 = HorizontalCounter::new(&d);
        assert_eq!(batch[0], h2.minterm_counts(&sets[0]));
        assert_eq!(batch[1], h2.minterm_counts(&sets[1]));
    }

    #[test]
    fn vertical_counts_index_build_as_one_scan() {
        let d = db();
        let mut v = VerticalCounter::new(&d);
        v.minterm_counts(&Itemset::from_ids([0, 1]));
        assert_eq!(v.stats().db_scans, 1);
        assert_eq!(v.stats().tables_built, 1);
        assert_eq!(v.stats().cells_counted, 4);
    }

    #[test]
    fn all_batch_paths_agree_with_singles() {
        let d = db();
        let sets = vec![
            Itemset::from_ids([0, 1]),
            Itemset::from_ids([0, 2]),
            Itemset::from_ids([1, 2]),
            Itemset::from_ids([0, 1, 2]),
            Itemset::from_ids([3]),
        ];
        let expected: Vec<Vec<u64>> = {
            let mut h = HorizontalCounter::new(&d);
            sets.iter().map(|s| h.minterm_counts(s)).collect()
        };
        let mut h = HorizontalCounter::new(&d);
        assert_eq!(h.minterm_counts_batch(&sets), expected, "horizontal batch");
        let mut v = VerticalCounter::new(&d);
        assert_eq!(v.minterm_counts_batch(&sets), expected, "vertical batch");
    }

    #[test]
    fn default_trait_batch_loops_over_singles() {
        // A counter that does not override the batch method gets the
        // per-candidate default.
        struct Wrapper<'a>(HorizontalCounter<'a>);
        impl MintermCounter for Wrapper<'_> {
            fn minterm_counts(&mut self, set: &Itemset) -> Vec<u64> {
                self.0.minterm_counts(set)
            }
            fn n_transactions(&self) -> usize {
                self.0.n_transactions()
            }
            fn stats(&self) -> CountingStats {
                self.0.stats()
            }
        }
        let d = db();
        let sets = vec![Itemset::from_ids([0, 1]), Itemset::from_ids([1, 2])];
        let mut w = Wrapper(HorizontalCounter::new(&d));
        let batch = w.minterm_counts_batch(&sets);
        assert_eq!(w.stats().db_scans, 2, "default batch is one scan per set");
        let mut h = HorizontalCounter::new(&d);
        assert_eq!(batch, h.minterm_counts_batch(&sets));
    }

    #[test]
    fn stats_since_diffs_fieldwise() {
        let d = db();
        let mut h = HorizontalCounter::new(&d);
        h.minterm_counts(&Itemset::from_ids([0]));
        let base = h.stats();
        h.minterm_counts(&Itemset::from_ids([0, 1]));
        let delta = h.stats().since(&base);
        assert_eq!(delta.tables_built, 1);
        assert_eq!(delta.db_scans, 1);
        assert_eq!(delta.cells_counted, 4);
        assert_eq!(delta.transactions_visited, d.len() as u64);
    }
}
