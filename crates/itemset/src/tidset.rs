//! [`TidSet`]: a fixed-capacity bitmap over transaction ids.
//!
//! A tid-set records which transactions of a database contain some item (or
//! satisfy some pattern). Contingency-table construction in the vertical
//! counting path reduces to `AND` / `AND NOT` over tid-sets plus popcounts,
//! so this type is the innermost loop of the whole miner.
//!
//! # Blocked layout
//!
//! The bitmap is stored as 64-bit words grouped into *superblocks* of
//! [`SUPERBLOCK_WORDS`] words each — 64 bytes, one cache line, 512 tids.
//! The word vector is padded up to a whole number of superblocks (padding
//! bits are always zero), so every bulk kernel runs a remainder-free
//! `chunks_exact` loop over fixed-width 8×u64 panels that LLVM
//! autovectorizes on stable Rust — no `unsafe`, no nightly `std::simd`.
//!
//! Alongside the words the set maintains `sb_pops`, an exact per-superblock
//! population count, updated by every mutator (bulk kernels recompute it in
//! the same fused pass that writes the words). The hints make [`count`]
//! an O(capacity/512) sum instead of a full popcount pass, let
//! intersection kernels skip whole superblocks where either operand is
//! empty, and give [`intersection_count_limited`] a superblock-granular
//! early exit.
//!
//! # Out-of-range contract
//!
//! The API is deliberately asymmetric about ids outside `0..capacity`:
//!
//! * [`insert`] **panics** — inserting an id the set cannot represent
//!   would silently lose data, so it is always a caller bug;
//! * [`remove`] and [`contains`] **tolerate** them — an out-of-range id is
//!   trivially absent, so removing it is a no-op and membership is `false`.
//!
//! This contract is pinned by tests (`api_contract_*` below) and relied on
//! by callers that probe ids from untrusted ranges.
//!
//! [`count`]: TidSet::count
//! [`insert`]: TidSet::insert
//! [`remove`]: TidSet::remove
//! [`contains`]: TidSet::contains
//! [`intersection_count_limited`]: TidSet::intersection_count_limited

use std::fmt;

/// Words per superblock: 8 × u64 = 64 bytes = one cache line = 512 tids.
pub const SUPERBLOCK_WORDS: usize = 8;

/// Tids covered by one superblock.
pub const SUPERBLOCK_BITS: usize = SUPERBLOCK_WORDS * BLOCK_BITS;

const BLOCK_BITS: usize = 64;

/// A bitmap over transaction ids `0..capacity`, stored in cache-line
/// superblocks with exact per-superblock population hints.
///
/// See the [module docs](self) for the layout and the out-of-range
/// contract.
#[derive(Clone, PartialEq, Eq)]
pub struct TidSet {
    /// Bit storage, padded to a whole number of superblocks. Invariant:
    /// every bit at position `>= capacity` (tail of the last live word and
    /// all padding words) is zero.
    words: Vec<u64>,
    /// Exact popcount of each superblock. Invariant: `sb_pops[i]` equals
    /// the popcount of words `[8i, 8i+8)` at all times.
    sb_pops: Vec<u32>,
    capacity: usize,
}

impl TidSet {
    /// An empty tid-set able to hold ids `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        let n_super = capacity.div_ceil(SUPERBLOCK_BITS);
        TidSet {
            words: vec![0; n_super * SUPERBLOCK_WORDS],
            sb_pops: vec![0; n_super],
            capacity,
        }
    }

    /// A tid-set with every id in `0..capacity` present.
    pub fn full(capacity: usize) -> Self {
        let mut s = Self::new(capacity);
        for b in &mut s.words {
            *b = !0;
        }
        s.clear_tail();
        s.rebuild_pops();
        s
    }

    /// Builds from an iterator of ids.
    pub fn from_ids<I: IntoIterator<Item = usize>>(capacity: usize, ids: I) -> Self {
        let mut s = Self::new(capacity);
        for id in ids {
            s.insert(id);
        }
        s
    }

    /// Number of ids this set can hold.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Inserts a transaction id.
    ///
    /// # Panics
    ///
    /// Panics if `tid >= capacity`: an unrepresentable id cannot be
    /// recorded, so accepting it would silently drop data (contrast with
    /// [`remove`](Self::remove), where out-of-range is a harmless no-op).
    #[inline]
    pub fn insert(&mut self, tid: usize) {
        assert!(
            tid < self.capacity,
            "tid {tid} out of range 0..{}",
            self.capacity
        );
        let word = tid / BLOCK_BITS;
        let mask = 1u64 << (tid % BLOCK_BITS);
        if self.words[word] & mask == 0 {
            self.words[word] |= mask;
            self.sb_pops[word / SUPERBLOCK_WORDS] += 1;
        }
    }

    /// Removes a transaction id.
    ///
    /// Out-of-range ids are tolerated: they are never present, so the call
    /// is a no-op (it cannot lose data, unlike an out-of-range
    /// [`insert`](Self::insert), which panics).
    #[inline]
    pub fn remove(&mut self, tid: usize) {
        if tid < self.capacity {
            let word = tid / BLOCK_BITS;
            let mask = 1u64 << (tid % BLOCK_BITS);
            if self.words[word] & mask != 0 {
                self.words[word] &= !mask;
                self.sb_pops[word / SUPERBLOCK_WORDS] -= 1;
            }
        }
    }

    /// Membership test. Ids outside `0..capacity` are absent (`false`),
    /// never an error — mirroring [`remove`](Self::remove).
    #[inline]
    pub fn contains(&self, tid: usize) -> bool {
        tid < self.capacity && self.words[tid / BLOCK_BITS] & (1u64 << (tid % BLOCK_BITS)) != 0
    }

    /// Number of ids present.
    ///
    /// An O(capacity / 512) sum over the superblock population hints —
    /// not a popcount pass over the bitmap.
    #[inline]
    pub fn count(&self) -> usize {
        self.sb_pops.iter().map(|&p| p as usize).sum()
    }

    /// `true` iff no id is present.
    pub fn is_empty(&self) -> bool {
        self.sb_pops.iter().all(|&p| p == 0)
    }

    /// In-place intersection with `other`.
    ///
    /// # Panics
    ///
    /// Panics if capacities differ.
    pub fn intersect_with(&mut self, other: &TidSet) {
        self.check_same_capacity(other);
        let TidSet { words, sb_pops, .. } = self;
        for ((sw, ow), pop) in words
            .chunks_exact_mut(SUPERBLOCK_WORDS)
            .zip(other.words.chunks_exact(SUPERBLOCK_WORDS))
            .zip(sb_pops.iter_mut())
        {
            let mut p = 0u32;
            for (a, b) in sw.iter_mut().zip(ow) {
                *a &= b;
                p += a.count_ones();
            }
            *pop = p;
        }
    }

    /// In-place union with `other`.
    pub fn union_with(&mut self, other: &TidSet) {
        self.check_same_capacity(other);
        let TidSet { words, sb_pops, .. } = self;
        for ((sw, ow), pop) in words
            .chunks_exact_mut(SUPERBLOCK_WORDS)
            .zip(other.words.chunks_exact(SUPERBLOCK_WORDS))
            .zip(sb_pops.iter_mut())
        {
            let mut p = 0u32;
            for (a, b) in sw.iter_mut().zip(ow) {
                *a |= b;
                p += a.count_ones();
            }
            *pop = p;
        }
    }

    /// In-place difference: removes every id present in `other`.
    pub fn subtract(&mut self, other: &TidSet) {
        self.check_same_capacity(other);
        let TidSet { words, sb_pops, .. } = self;
        for ((sw, ow), pop) in words
            .chunks_exact_mut(SUPERBLOCK_WORDS)
            .zip(other.words.chunks_exact(SUPERBLOCK_WORDS))
            .zip(sb_pops.iter_mut())
        {
            if *pop == 0 {
                continue;
            }
            let mut p = 0u32;
            for (a, b) in sw.iter_mut().zip(ow) {
                *a &= !b;
                p += a.count_ones();
            }
            *pop = p;
        }
    }

    /// New set: `self ∩ other`.
    pub fn intersection(&self, other: &TidSet) -> TidSet {
        let mut out = self.clone();
        out.intersect_with(other);
        out
    }

    /// New set: `self ∖ other`.
    pub fn difference(&self, other: &TidSet) -> TidSet {
        let mut out = self.clone();
        out.subtract(other);
        out
    }

    /// `|self ∩ other|` without allocating.
    ///
    /// Superblocks where either operand's population hint is zero are
    /// skipped without touching the bitmap words.
    pub fn intersection_count(&self, other: &TidSet) -> usize {
        self.check_same_capacity(other);
        let mut count = 0usize;
        for ((sw, ow), (&pa, &pb)) in self
            .words
            .chunks_exact(SUPERBLOCK_WORDS)
            .zip(other.words.chunks_exact(SUPERBLOCK_WORDS))
            .zip(self.sb_pops.iter().zip(&other.sb_pops))
        {
            if pa == 0 || pb == 0 {
                continue;
            }
            let mut c = 0u32;
            for (a, b) in sw.iter().zip(ow) {
                c += (a & b).count_ones();
            }
            count += c as usize;
        }
        count
    }

    /// `|self ∩ other|` with a bounded early exit: the scan stops as soon
    /// as the running count reaches `limit` (checked once per superblock).
    ///
    /// The result is exact whenever it is `< limit`. When `limit` is a
    /// *true upper bound* of the intersection count — e.g. the popcount
    /// of either operand — the result is always exact: the running count
    /// can only reach the bound by having counted every intersecting
    /// bit. That property lets the vertical leaf kernel and the
    /// CT-support `s`-threshold check use this in place of
    /// [`intersection_count`](Self::intersection_count) without changing
    /// any count, while skipping the tail of the bitmap once the bound
    /// saturates. Superblocks where either population hint is zero are
    /// skipped entirely.
    pub fn intersection_count_limited(&self, other: &TidSet, limit: usize) -> usize {
        self.check_same_capacity(other);
        let mut count = 0usize;
        for ((sw, ow), (&pa, &pb)) in self
            .words
            .chunks_exact(SUPERBLOCK_WORDS)
            .zip(other.words.chunks_exact(SUPERBLOCK_WORDS))
            .zip(self.sb_pops.iter().zip(&other.sb_pops))
        {
            if pa == 0 || pb == 0 {
                continue;
            }
            let mut c = 0u32;
            for (a, b) in sw.iter().zip(ow) {
                c += (a & b).count_ones();
            }
            count += c as usize;
            if count >= limit {
                return count;
            }
        }
        count
    }

    /// Splits `self` by `other`: returns `(self ∩ other, self ∖ other)`.
    ///
    /// This is the recursion step of vertical contingency-table counting:
    /// the current cell's tid-set is split into the transactions that do and
    /// do not contain the next item.
    pub fn split_by(&self, other: &TidSet) -> (TidSet, TidSet) {
        let mut with = TidSet::new(self.capacity);
        let mut without = TidSet::new(self.capacity);
        self.split_into(other, &mut with, &mut without);
        (with, without)
    }

    /// [`split_by`](Self::split_by) into caller-owned scratch sets,
    /// allocation-free. `with` and `without` are overwritten entirely;
    /// they only need matching capacity. One fused pass writes both
    /// halves and both sets' population hints.
    ///
    /// # Panics
    ///
    /// Panics if any of the four capacities differ.
    pub fn split_into(&self, other: &TidSet, with: &mut TidSet, without: &mut TidSet) {
        self.check_same_capacity(other);
        self.check_same_capacity(with);
        self.check_same_capacity(without);
        for (sb, (((sw, ow), ww), uw)) in self
            .words
            .chunks_exact(SUPERBLOCK_WORDS)
            .zip(other.words.chunks_exact(SUPERBLOCK_WORDS))
            .zip(with.words.chunks_exact_mut(SUPERBLOCK_WORDS))
            .zip(without.words.chunks_exact_mut(SUPERBLOCK_WORDS))
            .enumerate()
        {
            if self.sb_pops[sb] == 0 {
                // Empty source superblock: both halves are empty there.
                ww.fill(0);
                uw.fill(0);
                with.sb_pops[sb] = 0;
                without.sb_pops[sb] = 0;
                continue;
            }
            let mut pw = 0u32;
            let mut pu = 0u32;
            for (((s, o), w), u) in sw.iter().zip(ow).zip(ww.iter_mut()).zip(uw.iter_mut()) {
                let both = s & o;
                let only = s & !o;
                *w = both;
                *u = only;
                pw += both.count_ones();
                pu += only.count_ones();
            }
            with.sb_pops[sb] = pw;
            without.sb_pops[sb] = pu;
        }
    }

    /// `|self ∩ a ∩ b|` in one fused branch-free pass, no allocation.
    ///
    /// This is the member-specific kernel of the vertical batch leaf: the
    /// four contingency cells of a suffix pair `(a, b)` under a node `L`
    /// follow from `|L ∩ a ∩ b|` plus the class-shared `|L ∩ a|`,
    /// `|L ∩ b|`, and `|L|` by inclusion–exclusion. Superblocks where
    /// `self` is empty (by its population hint) are skipped.
    pub fn triple_intersection_count(&self, a: &TidSet, b: &TidSet) -> usize {
        self.check_same_capacity(a);
        self.check_same_capacity(b);
        let mut count = 0usize;
        for (((sw, xw), yw), &ps) in self
            .words
            .chunks_exact(SUPERBLOCK_WORDS)
            .zip(a.words.chunks_exact(SUPERBLOCK_WORDS))
            .zip(b.words.chunks_exact(SUPERBLOCK_WORDS))
            .zip(&self.sb_pops)
        {
            if ps == 0 {
                continue;
            }
            let mut c = 0u32;
            for ((s, x), y) in sw.iter().zip(xw).zip(yw) {
                c += (s & x & y).count_ones();
            }
            count += c as usize;
        }
        count
    }

    /// Popcounts of both halves of a split — `(|self ∩ other|,
    /// |self ∖ other|)` — without materialising either bitmap.
    ///
    /// The last level of the vertical counting recursion only needs the two
    /// leaf cell counts, so this fused kernel replaces a `split_by` (two
    /// allocations + two full passes) with a single pass. Superblocks
    /// where `self` is empty contribute nothing and are skipped; the
    /// `without` half then follows as `|self| − |self ∩ other|` from the
    /// hint sum, so only the AND lane is popcounted.
    pub fn count_split(&self, other: &TidSet) -> (usize, usize) {
        self.check_same_capacity(other);
        let mut total = 0usize;
        let mut with = 0usize;
        for ((sw, ow), &ps) in self
            .words
            .chunks_exact(SUPERBLOCK_WORDS)
            .zip(other.words.chunks_exact(SUPERBLOCK_WORDS))
            .zip(&self.sb_pops)
        {
            if ps == 0 {
                continue;
            }
            total += ps as usize;
            let mut c = 0u32;
            for (s, o) in sw.iter().zip(ow) {
                c += (s & o).count_ones();
            }
            with += c as usize;
        }
        (with, total - with)
    }

    /// Overwrites `self` with the contents of `other` (no allocation;
    /// capacities must match).
    pub fn copy_from(&mut self, other: &TidSet) {
        self.check_same_capacity(other);
        self.words.copy_from_slice(&other.words);
        self.sb_pops.copy_from_slice(&other.sb_pops);
    }

    /// Iterates over the present ids in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words
            .iter()
            .enumerate()
            .flat_map(|(bi, &block)| BitIter {
                block,
                base: bi * BLOCK_BITS,
            })
    }

    #[inline]
    fn check_same_capacity(&self, other: &TidSet) {
        assert_eq!(
            self.capacity, other.capacity,
            "tid-set capacity mismatch: {} vs {}",
            self.capacity, other.capacity
        );
    }

    /// Zeroes every bit at position `>= capacity`: the tail of the last
    /// live word and all padding words of the final superblock.
    fn clear_tail(&mut self) {
        let live_words = self.capacity.div_ceil(BLOCK_BITS);
        let tail = self.capacity % BLOCK_BITS;
        if tail != 0 {
            self.words[live_words - 1] &= (1u64 << tail) - 1;
        }
        for w in &mut self.words[live_words..] {
            *w = 0;
        }
    }

    /// Recomputes every superblock population hint from the words.
    fn rebuild_pops(&mut self) {
        let TidSet { words, sb_pops, .. } = self;
        for (sw, pop) in words.chunks_exact(SUPERBLOCK_WORDS).zip(sb_pops.iter_mut()) {
            *pop = sw.iter().map(|w| w.count_ones()).sum();
        }
    }

    /// Debug-build invariant check: padding bits are zero and every
    /// superblock hint matches its words. Compiled to nothing in release.
    #[cfg(debug_assertions)]
    pub(crate) fn debug_check_invariants(&self) {
        let mut reference = self.clone();
        reference.clear_tail();
        assert_eq!(
            reference.words, self.words,
            "tid-set has live bits beyond capacity {}",
            self.capacity
        );
        reference.rebuild_pops();
        assert_eq!(
            reference.sb_pops, self.sb_pops,
            "tid-set superblock population hints out of sync"
        );
    }
}

struct BitIter {
    block: u64,
    base: usize,
}

impl Iterator for BitIter {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        if self.block == 0 {
            return None;
        }
        let bit = self.block.trailing_zeros() as usize;
        self.block &= self.block - 1;
        Some(self.base + bit)
    }
}

impl fmt::Debug for TidSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TidSet")
            .field("capacity", &self.capacity)
            .field("count", &self.count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = TidSet::new(100);
        assert!(!s.contains(7));
        s.insert(7);
        s.insert(63);
        s.insert(64);
        assert!(s.contains(7));
        assert!(s.contains(63));
        assert!(s.contains(64));
        assert_eq!(s.count(), 3);
        s.remove(63);
        assert!(!s.contains(63));
        assert_eq!(s.count(), 2);
        s.debug_check_invariants();
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn insert_out_of_range_panics() {
        TidSet::new(10).insert(10);
    }

    /// Pins the documented out-of-range contract: `insert` panics (see
    /// `insert_out_of_range_panics`), while `remove` and `contains`
    /// tolerate any id — a no-op and `false` respectively — and leave the
    /// set's invariants intact (checked by debug assertions).
    #[test]
    fn api_contract_remove_and_contains_tolerate_out_of_range() {
        let mut s = TidSet::from_ids(100, [0, 50, 99]);
        for oob in [100usize, 101, 512, usize::MAX] {
            assert!(!s.contains(oob), "id {oob} must read as absent");
            s.remove(oob); // must be a no-op, not a panic
        }
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 50, 99]);
        s.debug_check_invariants();
    }

    #[test]
    fn full_respects_capacity_tail() {
        let s = TidSet::full(70);
        assert_eq!(s.count(), 70);
        assert!(s.contains(69));
        assert!(!s.contains(70));
        s.debug_check_invariants();
    }

    #[test]
    fn full_clears_padding_words_of_the_last_superblock() {
        // Capacity far from any superblock boundary: 3 live words + 5
        // padding words in the single superblock.
        let s = TidSet::full(130);
        assert_eq!(s.count(), 130);
        assert_eq!(s.iter().count(), 130);
        assert_eq!(s.iter().max(), Some(129));
        s.debug_check_invariants();
    }

    #[test]
    fn set_algebra() {
        let a = TidSet::from_ids(128, [1, 2, 3, 100]);
        let b = TidSet::from_ids(128, [2, 3, 4]);
        assert_eq!(a.intersection(&b).iter().collect::<Vec<_>>(), vec![2, 3]);
        assert_eq!(a.difference(&b).iter().collect::<Vec<_>>(), vec![1, 100]);
        assert_eq!(a.intersection_count(&b), 2);
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.count(), 5);
        u.debug_check_invariants();
    }

    #[test]
    fn bulk_ops_keep_population_hints_exact() {
        // Spread across several superblocks so the hint vector is
        // non-trivial, with one deliberately empty superblock in between.
        let a = TidSet::from_ids(2000, (0..700).chain(1500..1700));
        let b = TidSet::from_ids(2000, (300..900).chain(1600..1900));
        let mut x = a.clone();
        x.intersect_with(&b);
        x.debug_check_invariants();
        let mut y = a.clone();
        y.union_with(&b);
        y.debug_check_invariants();
        let mut z = a.clone();
        z.subtract(&b);
        z.debug_check_invariants();
        assert_eq!(x.count() + z.count(), a.count());
    }

    #[test]
    fn limited_intersection_count_is_exact_below_the_limit() {
        let a = TidSet::from_ids(2000, (0..2000).step_by(2));
        let b = TidSet::from_ids(2000, (0..2000).step_by(3));
        let exact = a.intersection_count(&b);
        assert_eq!(a.intersection_count_limited(&b, usize::MAX), exact);
        assert_eq!(a.intersection_count_limited(&b, exact + 1), exact);
    }

    #[test]
    fn limited_intersection_count_is_exact_at_a_true_upper_bound() {
        // Early exit at a bound that genuinely caps the count must still
        // return the exact value: |a ∩ b| ≤ |a|.
        let a = TidSet::from_ids(4096, 0..600);
        let b = TidSet::full(4096);
        let bound = a.count();
        assert_eq!(a.intersection_count_limited(&b, bound), bound);
        assert_eq!(
            a.intersection_count_limited(&b, bound),
            a.intersection_count(&b)
        );
    }

    #[test]
    fn limited_intersection_count_saturates_at_or_above_the_limit() {
        let a = TidSet::full(8192);
        let b = TidSet::full(8192);
        let got = a.intersection_count_limited(&b, 100);
        assert!(
            got >= 100,
            "early exit must only fire once the bound is hit"
        );
        assert!(got <= 8192);
    }

    #[test]
    fn limited_intersection_count_zero_limit_exits_immediately() {
        let a = TidSet::full(1024);
        let b = TidSet::full(1024);
        // A zero limit is trivially reached after the first superblock.
        assert!(a.intersection_count_limited(&b, 0) <= 512);
    }

    #[test]
    fn intersection_kernels_skip_empty_superblocks() {
        // `a` empty in the middle superblock, `b` empty at the ends; the
        // hint-gated kernels must still count exactly.
        let a = TidSet::from_ids(1536, (0..512).chain(1024..1536));
        let b = TidSet::from_ids(1536, (256..1280).step_by(2));
        let expected: usize = a.iter().filter(|&t| b.contains(t)).count();
        assert_eq!(a.intersection_count(&b), expected);
        assert_eq!(a.intersection_count_limited(&b, usize::MAX), expected);
        assert_eq!(b.intersection_count(&a), expected);
    }

    #[test]
    fn split_by_partitions() {
        let a = TidSet::from_ids(64, [0, 1, 2, 3]);
        let b = TidSet::from_ids(64, [1, 3, 5]);
        let (with, without) = a.split_by(&b);
        assert_eq!(with.iter().collect::<Vec<_>>(), vec![1, 3]);
        assert_eq!(without.iter().collect::<Vec<_>>(), vec![0, 2]);
        assert_eq!(with.count() + without.count(), a.count());
    }

    #[test]
    fn split_into_reuses_scratch_and_matches_split_by() {
        let a = TidSet::from_ids(130, [0, 1, 63, 64, 65, 129]);
        let b = TidSet::from_ids(130, [1, 64, 100, 129]);
        // Dirty scratch must be fully overwritten.
        let mut with = TidSet::from_ids(130, [7, 8, 9]);
        let mut without = TidSet::full(130);
        a.split_into(&b, &mut with, &mut without);
        let (ew, ewo) = a.split_by(&b);
        assert_eq!(with, ew);
        assert_eq!(without, ewo);
        with.debug_check_invariants();
        without.debug_check_invariants();
    }

    #[test]
    fn split_into_clears_dirty_scratch_in_empty_superblocks() {
        // The source's second superblock is empty, so the fast path must
        // still zero whatever the scratch held there.
        let a = TidSet::from_ids(1100, 0..100);
        let b = TidSet::from_ids(1100, 50..150);
        let mut with = TidSet::full(1100);
        let mut without = TidSet::full(1100);
        a.split_into(&b, &mut with, &mut without);
        assert_eq!(
            with.iter().collect::<Vec<_>>(),
            (50..100).collect::<Vec<_>>()
        );
        assert_eq!(
            without.iter().collect::<Vec<_>>(),
            (0..50).collect::<Vec<_>>()
        );
        with.debug_check_invariants();
        without.debug_check_invariants();
    }

    #[test]
    fn count_split_matches_materialised_split() {
        let a = TidSet::from_ids(200, (0..200).step_by(3));
        let b = TidSet::from_ids(200, (0..200).step_by(5));
        let (with, without) = a.split_by(&b);
        assert_eq!(a.count_split(&b), (with.count(), without.count()));
        assert_eq!(a.count_split(&b).0, a.intersection_count(&b));
    }

    #[test]
    fn triple_intersection_count_matches_materialised() {
        let a = TidSet::from_ids(300, (0..300).step_by(2));
        let b = TidSet::from_ids(300, (0..300).step_by(3));
        let c = TidSet::from_ids(300, (0..300).step_by(5));
        let expected = a.intersection(&b).intersection(&c).count();
        assert_eq!(a.triple_intersection_count(&b, &c), expected);
        assert_eq!(expected, 10); // multiples of 30 in 0..300
    }

    #[test]
    fn copy_from_overwrites() {
        let src = TidSet::from_ids(70, [0, 42, 69]);
        let mut dst = TidSet::full(70);
        dst.copy_from(&src);
        assert_eq!(dst, src);
        dst.debug_check_invariants();
    }

    #[test]
    #[should_panic(expected = "capacity mismatch")]
    fn capacity_mismatch_panics() {
        let mut a = TidSet::new(64);
        let b = TidSet::new(65);
        a.intersect_with(&b);
    }

    #[test]
    fn iter_crosses_block_boundaries() {
        let ids = [0, 63, 64, 127, 128];
        let s = TidSet::from_ids(200, ids);
        assert_eq!(s.iter().collect::<Vec<_>>(), ids.to_vec());
    }

    #[test]
    fn empty_detection() {
        let mut s = TidSet::new(64);
        assert!(s.is_empty());
        s.insert(0);
        assert!(!s.is_empty());
    }

    #[test]
    fn zero_capacity_is_degenerate_but_sound() {
        let mut s = TidSet::new(0);
        assert_eq!(s.count(), 0);
        assert!(s.is_empty());
        assert!(!s.contains(0));
        s.remove(0);
        assert_eq!(s.iter().count(), 0);
        let t = TidSet::full(0);
        assert_eq!(s.intersection_count(&t), 0);
    }
}
