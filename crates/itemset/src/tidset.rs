//! [`TidSet`]: a fixed-capacity bitmap over transaction ids.
//!
//! A tid-set records which transactions of a database contain some item (or
//! satisfy some pattern). Contingency-table construction in the vertical
//! counting path reduces to `AND` / `AND NOT` over tid-sets plus popcounts,
//! so this type is the innermost loop of the whole miner. It is a plain
//! `Vec<u64>` of blocks with branch-free bulk operations.

use std::fmt;

/// A bitmap over transaction ids `0..capacity`.
#[derive(Clone, PartialEq, Eq)]
pub struct TidSet {
    blocks: Vec<u64>,
    capacity: usize,
}

const BLOCK_BITS: usize = 64;

impl TidSet {
    /// An empty tid-set able to hold ids `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        TidSet {
            blocks: vec![0; capacity.div_ceil(BLOCK_BITS)],
            capacity,
        }
    }

    /// A tid-set with every id in `0..capacity` present.
    pub fn full(capacity: usize) -> Self {
        let mut s = Self::new(capacity);
        for b in &mut s.blocks {
            *b = !0;
        }
        s.clear_tail();
        s
    }

    /// Builds from an iterator of ids.
    pub fn from_ids<I: IntoIterator<Item = usize>>(capacity: usize, ids: I) -> Self {
        let mut s = Self::new(capacity);
        for id in ids {
            s.insert(id);
        }
        s
    }

    /// Number of ids this set can hold.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Inserts a transaction id.
    ///
    /// # Panics
    ///
    /// Panics if `tid >= capacity`.
    #[inline]
    pub fn insert(&mut self, tid: usize) {
        assert!(
            tid < self.capacity,
            "tid {tid} out of range 0..{}",
            self.capacity
        );
        self.blocks[tid / BLOCK_BITS] |= 1u64 << (tid % BLOCK_BITS);
    }

    /// Removes a transaction id (no-op if absent or out of range).
    #[inline]
    pub fn remove(&mut self, tid: usize) {
        if tid < self.capacity {
            self.blocks[tid / BLOCK_BITS] &= !(1u64 << (tid % BLOCK_BITS));
        }
    }

    /// Membership test. Ids outside `0..capacity` are absent.
    #[inline]
    pub fn contains(&self, tid: usize) -> bool {
        tid < self.capacity && self.blocks[tid / BLOCK_BITS] & (1u64 << (tid % BLOCK_BITS)) != 0
    }

    /// Number of ids present (popcount).
    pub fn count(&self) -> usize {
        self.blocks.iter().map(|b| b.count_ones() as usize).sum()
    }

    /// `true` iff no id is present.
    pub fn is_empty(&self) -> bool {
        self.blocks.iter().all(|&b| b == 0)
    }

    /// In-place intersection with `other`.
    ///
    /// # Panics
    ///
    /// Panics if capacities differ.
    pub fn intersect_with(&mut self, other: &TidSet) {
        self.check_same_capacity(other);
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            *a &= b;
        }
    }

    /// In-place union with `other`.
    pub fn union_with(&mut self, other: &TidSet) {
        self.check_same_capacity(other);
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            *a |= b;
        }
    }

    /// In-place difference: removes every id present in `other`.
    pub fn subtract(&mut self, other: &TidSet) {
        self.check_same_capacity(other);
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            *a &= !b;
        }
    }

    /// New set: `self ∩ other`.
    pub fn intersection(&self, other: &TidSet) -> TidSet {
        let mut out = self.clone();
        out.intersect_with(other);
        out
    }

    /// New set: `self ∖ other`.
    pub fn difference(&self, other: &TidSet) -> TidSet {
        let mut out = self.clone();
        out.subtract(other);
        out
    }

    /// `|self ∩ other|` without allocating.
    pub fn intersection_count(&self, other: &TidSet) -> usize {
        self.check_same_capacity(other);
        self.blocks
            .iter()
            .zip(&other.blocks)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// `|self ∩ other|` with a bounded early exit: the scan stops as soon
    /// as the running count reaches `limit` (checked every few blocks).
    ///
    /// The result is exact whenever it is `< limit`. When `limit` is a
    /// *true upper bound* of the intersection count — e.g. the popcount
    /// of either operand — the result is always exact: the running count
    /// can only reach the bound by having counted every intersecting
    /// bit. That property lets the vertical leaf kernel and the
    /// CT-support `s`-threshold check use this in place of
    /// [`intersection_count`](Self::intersection_count) without changing
    /// any count, while skipping the tail of the bitmap once the bound
    /// saturates.
    pub fn intersection_count_limited(&self, other: &TidSet, limit: usize) -> usize {
        self.check_same_capacity(other);
        let mut count = 0usize;
        // Stride of 8 blocks (512 tids) between exit checks: cheap enough
        // to keep the loop branch-predictable, fine-grained enough that a
        // saturated bound skips most of a large bitmap.
        for (ca, cb) in self.blocks.chunks(8).zip(other.blocks.chunks(8)) {
            for (a, b) in ca.iter().zip(cb) {
                count += (a & b).count_ones() as usize;
            }
            if count >= limit {
                return count;
            }
        }
        count
    }

    /// Splits `self` by `other`: returns `(self ∩ other, self ∖ other)`.
    ///
    /// This is the recursion step of vertical contingency-table counting:
    /// the current cell's tid-set is split into the transactions that do and
    /// do not contain the next item.
    pub fn split_by(&self, other: &TidSet) -> (TidSet, TidSet) {
        let mut with = TidSet::new(self.capacity);
        let mut without = TidSet::new(self.capacity);
        self.split_into(other, &mut with, &mut without);
        (with, without)
    }

    /// [`split_by`](Self::split_by) into caller-owned scratch sets,
    /// allocation-free. `with` and `without` are overwritten entirely;
    /// they only need matching capacity.
    ///
    /// # Panics
    ///
    /// Panics if any of the four capacities differ.
    pub fn split_into(&self, other: &TidSet, with: &mut TidSet, without: &mut TidSet) {
        self.check_same_capacity(other);
        self.check_same_capacity(with);
        self.check_same_capacity(without);
        for i in 0..self.blocks.len() {
            let s = self.blocks[i];
            let o = other.blocks[i];
            with.blocks[i] = s & o;
            without.blocks[i] = s & !o;
        }
    }

    /// `|self ∩ a ∩ b|` in one fused branch-free pass, no allocation.
    ///
    /// This is the member-specific kernel of the vertical batch leaf: the
    /// four contingency cells of a suffix pair `(a, b)` under a node `L`
    /// follow from `|L ∩ a ∩ b|` plus the class-shared `|L ∩ a|`,
    /// `|L ∩ b|`, and `|L|` by inclusion–exclusion.
    pub fn triple_intersection_count(&self, a: &TidSet, b: &TidSet) -> usize {
        self.check_same_capacity(a);
        self.check_same_capacity(b);
        let mut count = 0usize;
        for ((s, x), y) in self.blocks.iter().zip(&a.blocks).zip(&b.blocks) {
            count += (s & x & y).count_ones() as usize;
        }
        count
    }

    /// Popcounts of both halves of a split — `(|self ∩ other|,
    /// |self ∖ other|)` — without materialising either bitmap.
    ///
    /// The last level of the vertical counting recursion only needs the two
    /// leaf cell counts, so this branch-free kernel replaces a `split_by`
    /// (two allocations + two full passes) with a single fused pass.
    pub fn count_split(&self, other: &TidSet) -> (usize, usize) {
        self.check_same_capacity(other);
        let mut with = 0usize;
        let mut without = 0usize;
        for (s, o) in self.blocks.iter().zip(&other.blocks) {
            with += (s & o).count_ones() as usize;
            without += (s & !o).count_ones() as usize;
        }
        (with, without)
    }

    /// Overwrites `self` with the contents of `other` (no allocation;
    /// capacities must match).
    pub fn copy_from(&mut self, other: &TidSet) {
        self.check_same_capacity(other);
        self.blocks.copy_from_slice(&other.blocks);
    }

    /// Iterates over the present ids in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.blocks
            .iter()
            .enumerate()
            .flat_map(|(bi, &block)| BitIter {
                block,
                base: bi * BLOCK_BITS,
            })
    }

    #[inline]
    fn check_same_capacity(&self, other: &TidSet) {
        assert_eq!(
            self.capacity, other.capacity,
            "tid-set capacity mismatch: {} vs {}",
            self.capacity, other.capacity
        );
    }

    /// Zeroes bits beyond `capacity` in the last block.
    fn clear_tail(&mut self) {
        let tail = self.capacity % BLOCK_BITS;
        if tail != 0 {
            if let Some(last) = self.blocks.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }
}

struct BitIter {
    block: u64,
    base: usize,
}

impl Iterator for BitIter {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        if self.block == 0 {
            return None;
        }
        let bit = self.block.trailing_zeros() as usize;
        self.block &= self.block - 1;
        Some(self.base + bit)
    }
}

impl fmt::Debug for TidSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TidSet")
            .field("capacity", &self.capacity)
            .field("count", &self.count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = TidSet::new(100);
        assert!(!s.contains(7));
        s.insert(7);
        s.insert(63);
        s.insert(64);
        assert!(s.contains(7));
        assert!(s.contains(63));
        assert!(s.contains(64));
        assert_eq!(s.count(), 3);
        s.remove(63);
        assert!(!s.contains(63));
        assert_eq!(s.count(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn insert_out_of_range_panics() {
        TidSet::new(10).insert(10);
    }

    #[test]
    fn full_respects_capacity_tail() {
        let s = TidSet::full(70);
        assert_eq!(s.count(), 70);
        assert!(s.contains(69));
        assert!(!s.contains(70));
    }

    #[test]
    fn set_algebra() {
        let a = TidSet::from_ids(128, [1, 2, 3, 100]);
        let b = TidSet::from_ids(128, [2, 3, 4]);
        assert_eq!(a.intersection(&b).iter().collect::<Vec<_>>(), vec![2, 3]);
        assert_eq!(a.difference(&b).iter().collect::<Vec<_>>(), vec![1, 100]);
        assert_eq!(a.intersection_count(&b), 2);
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.count(), 5);
    }

    #[test]
    fn limited_intersection_count_is_exact_below_the_limit() {
        let a = TidSet::from_ids(2000, (0..2000).step_by(2));
        let b = TidSet::from_ids(2000, (0..2000).step_by(3));
        let exact = a.intersection_count(&b);
        assert_eq!(a.intersection_count_limited(&b, usize::MAX), exact);
        assert_eq!(a.intersection_count_limited(&b, exact + 1), exact);
    }

    #[test]
    fn limited_intersection_count_is_exact_at_a_true_upper_bound() {
        // Early exit at a bound that genuinely caps the count must still
        // return the exact value: |a ∩ b| ≤ |a|.
        let a = TidSet::from_ids(4096, 0..600);
        let b = TidSet::full(4096);
        let bound = a.count();
        assert_eq!(a.intersection_count_limited(&b, bound), bound);
        assert_eq!(
            a.intersection_count_limited(&b, bound),
            a.intersection_count(&b)
        );
    }

    #[test]
    fn limited_intersection_count_saturates_at_or_above_the_limit() {
        let a = TidSet::full(8192);
        let b = TidSet::full(8192);
        let got = a.intersection_count_limited(&b, 100);
        assert!(
            got >= 100,
            "early exit must only fire once the bound is hit"
        );
        assert!(got <= 8192);
    }

    #[test]
    fn limited_intersection_count_zero_limit_exits_immediately() {
        let a = TidSet::full(1024);
        let b = TidSet::full(1024);
        // A zero limit is trivially reached after the first stride.
        assert!(a.intersection_count_limited(&b, 0) <= 512);
    }

    #[test]
    fn split_by_partitions() {
        let a = TidSet::from_ids(64, [0, 1, 2, 3]);
        let b = TidSet::from_ids(64, [1, 3, 5]);
        let (with, without) = a.split_by(&b);
        assert_eq!(with.iter().collect::<Vec<_>>(), vec![1, 3]);
        assert_eq!(without.iter().collect::<Vec<_>>(), vec![0, 2]);
        assert_eq!(with.count() + without.count(), a.count());
    }

    #[test]
    fn split_into_reuses_scratch_and_matches_split_by() {
        let a = TidSet::from_ids(130, [0, 1, 63, 64, 65, 129]);
        let b = TidSet::from_ids(130, [1, 64, 100, 129]);
        // Dirty scratch must be fully overwritten.
        let mut with = TidSet::from_ids(130, [7, 8, 9]);
        let mut without = TidSet::full(130);
        a.split_into(&b, &mut with, &mut without);
        let (ew, ewo) = a.split_by(&b);
        assert_eq!(with, ew);
        assert_eq!(without, ewo);
    }

    #[test]
    fn count_split_matches_materialised_split() {
        let a = TidSet::from_ids(200, (0..200).step_by(3));
        let b = TidSet::from_ids(200, (0..200).step_by(5));
        let (with, without) = a.split_by(&b);
        assert_eq!(a.count_split(&b), (with.count(), without.count()));
        assert_eq!(a.count_split(&b).0, a.intersection_count(&b));
    }

    #[test]
    fn triple_intersection_count_matches_materialised() {
        let a = TidSet::from_ids(300, (0..300).step_by(2));
        let b = TidSet::from_ids(300, (0..300).step_by(3));
        let c = TidSet::from_ids(300, (0..300).step_by(5));
        let expected = a.intersection(&b).intersection(&c).count();
        assert_eq!(a.triple_intersection_count(&b, &c), expected);
        assert_eq!(expected, 10); // multiples of 30 in 0..300
    }

    #[test]
    fn copy_from_overwrites() {
        let src = TidSet::from_ids(70, [0, 42, 69]);
        let mut dst = TidSet::full(70);
        dst.copy_from(&src);
        assert_eq!(dst, src);
    }

    #[test]
    #[should_panic(expected = "capacity mismatch")]
    fn capacity_mismatch_panics() {
        let mut a = TidSet::new(64);
        let b = TidSet::new(65);
        a.intersect_with(&b);
    }

    #[test]
    fn iter_crosses_block_boundaries() {
        let ids = [0, 63, 64, 127, 128];
        let s = TidSet::from_ids(200, ids);
        assert_eq!(s.iter().collect::<Vec<_>>(), ids.to_vec());
    }

    #[test]
    fn empty_detection() {
        let mut s = TidSet::new(64);
        assert!(s.is_empty());
        s.insert(0);
        assert!(!s.is_empty());
    }
}
