//! [`VerticalIndex`]: a per-item tid-set index over a [`TransactionDb`].
//!
//! The vertical layout stores, for every item, the set of transaction ids
//! that contain it. Supports become tid-set intersections and full
//! contingency tables become a recursive tid-set split — no repeated
//! database scans. This is the fast counting path; the horizontal scan in
//! [`crate::counting`] is the paper-faithful one.
//!
//! Two allocation disciplines keep the recursion off the heap:
//!
//! * a **depth-indexed scratch arena** (two bitmaps per recursion depth,
//!   reused across every table this index ever builds), so interior
//!   recursion nodes write into preallocated slots instead of
//!   materialising fresh bitmaps;
//! * the **last two recursion levels never materialise at all** — the
//!   four leaf cells of a set's final item pair `(a, b)` under a node
//!   `L` follow by inclusion–exclusion from one fused
//!   [`TidSet::triple_intersection_count`] pass (`|L ∩ a ∩ b|`) plus
//!   `|L ∩ a|`, `|L ∩ b|`, and `|L|`.
//!
//! [`minterm_counts_batch`](VerticalIndex::minterm_counts_batch) adds
//! Eclat-style prefix sharing on top: candidates are grouped into
//! equivalence classes by their `(k-2)`-item prefix, the prefix's split
//! tree is walked once per class, and at each of its leaves the
//! class-shared quantities — the node total `|L|` and the per-item
//! counts `|L ∩ a|` — are computed once, so each member's marginal cost
//! is a single triple-intersection popcount pass per leaf.
//!
//! Internally the immutable state (tid-sets + universe) lives in a
//! [`VerticalCore`] behind an `Arc`, and a level batch is planned into
//! self-contained [`OwnedClass`] work units. That split is what lets
//! [`crate::vertical_par::ParallelVerticalIndex`] fan the same classes
//! out across a worker pool — each worker shares the core, owns its own
//! scratch arena, and counts disjoint classes — while this type stays
//! the single-threaded fast path with zero behavioural change.

use std::collections::BTreeMap;
use std::sync::Arc;

use crate::counting::{BatchInterrupted, CountProbe, NoProbe};
use crate::database::TransactionDb;
use crate::item::Item;
use crate::itemset::Itemset;
use crate::tidset::TidSet;

/// The immutable heart of a vertical index: per-item tid-sets plus the
/// cached universe bitmap. Shared (via `Arc`) between [`VerticalIndex`]
/// and the parallel batch engine — every method takes `&self`, so any
/// number of threads may count against one core concurrently, each with
/// its own scratch arena.
#[derive(Debug)]
pub(crate) struct VerticalCore {
    n_transactions: usize,
    tidsets: Vec<TidSet>,
    /// Cached `TidSet::full(n)` — the root of every split recursion.
    universe: TidSet,
}

/// One prefix-equivalence class of a level batch, owning its data so it
/// can cross a thread boundary: the shared `(k-2)`-item prefix, the
/// distinct suffix items appearing in any member's final `(a, b)` pair,
/// the members as `(index of a, index of b)` into `items`, and each
/// member's destination row in the batch's results. Member `j`'s counts
/// are written to local output row `j`; the caller scatters local rows
/// to `rows[j]`. Indexing (instead of hashing) lets every leaf fill a
/// flat per-item count buffer with one pass per distinct item.
#[derive(Debug, Clone)]
pub(crate) struct OwnedClass {
    pub(crate) prefix: Vec<Item>,
    pub(crate) items: Vec<Item>,
    pub(crate) members: Vec<(u32, u32)>,
    pub(crate) rows: Vec<usize>,
}

impl OwnedClass {
    /// Cells per member table: all members share `k = prefix + 2` items.
    pub(crate) fn table_len(&self) -> usize {
        1usize << (self.prefix.len() + 2)
    }

    /// Total cells this class produces (its work-budget charge).
    pub(crate) fn cells(&self) -> u64 {
        (self.members.len() * self.table_len()) as u64
    }

    /// Rough cost estimate in 64-bit bitmap words touched: per leaf of
    /// the prefix tree, one node popcount + one split, one pass per
    /// distinct item, and one triple pass per member. Used by the
    /// parallel engine's sequential-fallback work floor.
    pub(crate) fn estimated_word_ops(&self, n_transactions: usize) -> u64 {
        let words = n_transactions.div_ceil(64).max(1) as u64;
        let leaves = 1u64 << self.prefix.len();
        leaves * (2 + self.items.len() as u64 + self.members.len() as u64) * words
    }
}

/// A planned level batch: the non-trivial candidates of a
/// [`minterm_counts_batch`](VerticalIndex::minterm_counts_batch) call,
/// grouped into prefix-equivalence classes (deterministic `BTreeMap`
/// prefix order). Trivial 0-/1-item sets were already answered inline
/// during planning.
pub(crate) struct LevelPlan {
    pub(crate) classes: Vec<OwnedClass>,
}

/// A trivial (0-/1-item) candidate of a level batch: its destination
/// row and its single item, if any. Trivial sets never walk a split
/// tree — they are answered from whole-database totals, which is what
/// lets the sharded engine answer them from *summed* per-shard totals
/// instead of any single core.
pub(crate) struct TrivialSet {
    pub(crate) row: usize,
    pub(crate) item: Option<Item>,
}

/// Answers one trivial set into its (zeroed) result row given the
/// database-wide transaction count and the item's database-wide
/// support, recording the completed table in `done`.
pub(crate) fn answer_trivial(
    trivial: &TrivialSet,
    n_transactions: u64,
    item_support: u64,
    results: &mut [Vec<u64>],
    done: &mut BatchInterrupted,
) {
    let row = &mut results[trivial.row];
    match trivial.item {
        None => {
            row[0] = n_transactions;
            done.cells_completed += 1;
        }
        Some(_) => {
            row[1] = item_support;
            row[0] = n_transactions - item_support;
            done.cells_completed += 2;
        }
    }
    done.tables_completed += 1;
}

/// Splits `sets` into trivial 0-/1-item candidates and prefix-equivalence
/// classes, without touching any counts. Pure grouping — shared by every
/// engine (sequential, pool-parallel, sharded) so the class structure is
/// identical no matter how the counting itself is distributed.
pub(crate) fn group_classes(sets: &[Itemset]) -> (Vec<TrivialSet>, LevelPlan) {
    let mut trivial = Vec::new();
    let mut grouped: BTreeMap<&[Item], Vec<(usize, Item, Item)>> = BTreeMap::new();
    for (i, set) in sets.iter().enumerate() {
        match set.items() {
            [] => trivial.push(TrivialSet { row: i, item: None }),
            [a] => trivial.push(TrivialSet {
                row: i,
                item: Some(*a),
            }),
            [prefix @ .., a, b] => grouped.entry(prefix).or_default().push((i, *a, *b)),
        }
    }
    let classes = grouped
        .into_iter()
        .map(|(prefix, raw)| {
            let mut items: Vec<Item> = raw.iter().flat_map(|&(_, a, b)| [a, b]).collect();
            items.sort_unstable();
            items.dedup();
            // `items` was deduped from exactly these members, so the
            // search cannot miss.
            #[allow(clippy::unwrap_used)]
            let pos = |item: Item| items.binary_search(&item).unwrap() as u32;
            let members = raw.iter().map(|&(_, a, b)| (pos(a), pos(b))).collect();
            let rows = raw.iter().map(|&(ci, _, _)| ci).collect();
            OwnedClass {
                prefix: prefix.to_vec(),
                items,
                members,
                rows,
            }
        })
        .collect();
    (trivial, LevelPlan { classes })
}

/// Groups `sets` into prefix-equivalence classes. Trivial 0-/1-item sets
/// are answered directly into `results` (no tree walk) from the core's
/// totals and recorded in `done`; every `results[i]` must arrive zeroed
/// and sized `2^k`.
pub(crate) fn plan_level(
    core: &VerticalCore,
    sets: &[Itemset],
    results: &mut [Vec<u64>],
    done: &mut BatchInterrupted,
) -> LevelPlan {
    let (trivial, plan) = group_classes(sets);
    for t in &trivial {
        let support = t.item.map_or(0, |a| core.tidsets[a.index()].count() as u64);
        answer_trivial(t, core.n_transactions as u64, support, results, done);
    }
    plan
}

/// Runs `classes` on the calling thread, scattering counts into
/// `results` and charging the probe per completed class. Returns `true`
/// if the probe interrupted the run (completed classes are kept;
/// partially-walked classes never escape — the in-flight class's rows
/// are restored untouched before returning).
pub(crate) fn run_classes_sequential(
    core: &VerticalCore,
    classes: &[OwnedClass],
    probe: &dyn CountProbe,
    scratch: &mut Vec<TidSet>,
    results: &mut [Vec<u64>],
    done: &mut BatchInterrupted,
) -> bool {
    let mut item_counts: Vec<usize> = Vec::new();
    let mut out: Vec<Vec<u64>> = Vec::new();
    for class in classes {
        if probe.should_stop() {
            return true;
        }
        // Zero-copy: move each member's (zeroed) result row into the
        // local output buffer, count, and move it back.
        out.clear();
        out.extend(class.rows.iter().map(|&r| std::mem::take(&mut results[r])));
        core.count_class(class, &mut item_counts, scratch, &mut out);
        for (local, &r) in out.iter_mut().zip(&class.rows) {
            results[r] = std::mem::take(local);
        }
        done.tables_completed += class.members.len() as u64;
        done.cells_completed += class.cells();
        if probe.charge(class.cells()) {
            return true;
        }
    }
    false
}

impl VerticalCore {
    /// Builds the core in a single pass over the database.
    pub(crate) fn build(db: &TransactionDb) -> Self {
        Self::build_range(db, 0, db.len())
    }

    /// Builds a core over the transaction slice `start..end` only: shard
    /// `tid` maps to database transaction `start + tid`, and every
    /// bitmap has capacity `end - start`. This is the horizontal-sharding
    /// primitive — a [`crate::sharded::ShardedVerticalIndex`] holds one
    /// such core per disjoint range, and elementwise sums of the
    /// per-shard contingency tables reproduce the whole-database tables
    /// exactly (every transaction lives in exactly one shard).
    pub(crate) fn build_range(db: &TransactionDb, start: usize, end: usize) -> Self {
        debug_assert!(start <= end && end <= db.len());
        let n = end - start;
        let mut tidsets = vec![TidSet::new(n); db.n_items() as usize];
        for (tid, t) in db.transactions().enumerate().skip(start).take(n) {
            for item in t {
                tidsets[item.index()].insert(tid - start);
            }
        }
        #[cfg(debug_assertions)]
        for ts in &tidsets {
            ts.debug_check_invariants();
        }
        VerticalCore {
            n_transactions: n,
            tidsets,
            universe: TidSet::full(n),
        }
    }

    #[inline]
    pub(crate) fn n_transactions(&self) -> usize {
        self.n_transactions
    }

    #[inline]
    pub(crate) fn n_items(&self) -> usize {
        self.tidsets.len()
    }

    #[inline]
    pub(crate) fn tidset(&self, item: Item) -> &TidSet {
        &self.tidsets[item.index()]
    }

    /// Absolute support of an itemset via tid-set intersection.
    pub(crate) fn support(&self, set: &Itemset) -> usize {
        let items = set.items();
        match items {
            [] => self.n_transactions,
            [a] => self.tidsets[a.index()].count(),
            [a, b] => self.tidsets[a.index()].intersection_count(&self.tidsets[b.index()]),
            [a, rest @ ..] => {
                let mut acc = self.tidsets[a.index()].clone();
                for item in rest {
                    acc.intersect_with(&self.tidsets[item.index()]);
                    if acc.is_empty() {
                        return 0;
                    }
                }
                acc.count()
            }
        }
    }

    /// Exact threshold test `support(set) >= s` with a bounded early
    /// exit: the final popcount stops as soon as `s` matching
    /// transactions have been seen, so a set far above the threshold
    /// never scans its whole tid-set.
    pub(crate) fn support_at_least(&self, set: &Itemset, s: usize) -> bool {
        if s == 0 {
            return true;
        }
        match set.items() {
            [] => self.n_transactions >= s,
            [a] => self.tidsets[a.index()].intersection_count_limited(&self.universe, s) >= s,
            [a, b] => {
                self.tidsets[a.index()].intersection_count_limited(&self.tidsets[b.index()], s) >= s
            }
            [a, rest @ .., last] => {
                let mut acc = self.tidsets[a.index()].clone();
                for item in rest {
                    acc.intersect_with(&self.tidsets[item.index()]);
                    if acc.is_empty() {
                        return false;
                    }
                }
                acc.intersection_count_limited(&self.tidsets[last.index()], s) >= s
            }
        }
    }

    /// Counts one class into `out`, where `out[j]` is member `j`'s
    /// zeroed `2^k`-cell table. Grows `scratch`/`item_counts` on demand;
    /// both are reused across calls.
    pub(crate) fn count_class(
        &self,
        class: &OwnedClass,
        item_counts: &mut Vec<usize>,
        scratch: &mut Vec<TidSet>,
        out: &mut [Vec<u64>],
    ) {
        debug_assert_eq!(out.len(), class.members.len());
        self.ensure_scratch(scratch, class.prefix.len());
        if item_counts.len() < class.items.len() {
            item_counts.resize(class.items.len(), 0);
        }
        self.prefix_recurse(
            &self.universe,
            &class.prefix,
            0,
            0,
            class,
            item_counts,
            scratch,
            out,
        );
    }

    /// Walks the split tree of `prefix`, then finishes every member
    /// (suffix item pair) at each leaf.
    ///
    /// `scratch` holds the arena slots for depths `>= depth`; interior
    /// nodes split into the first two slots and recurse with the rest, so
    /// a node's bitmaps stay live (and untouched) while its subtree runs.
    #[allow(clippy::too_many_arguments)]
    fn prefix_recurse(
        &self,
        current: &TidSet,
        prefix: &[Item],
        depth: usize,
        mask: usize,
        class: &OwnedClass,
        item_counts: &mut [usize],
        scratch: &mut [TidSet],
        out: &mut [Vec<u64>],
    ) {
        match prefix.split_first() {
            None => {
                // Leaf of the shared prefix tree: no bitmap ever
                // materialises here. The node total and the per-item
                // counts are class-shared (one popcount pass per distinct
                // suffix item, written into the flat buffer); each member
                // then pays a single fused triple-intersection pass, and
                // its remaining three cells follow by inclusion–exclusion.
                let node_total = current.count();
                if node_total == 0 {
                    return; // the output rows are already zeroed
                }
                let a_bit = 1usize << depth;
                let b_bit = 1usize << (depth + 1);
                for (slot, item) in item_counts.iter_mut().zip(&class.items) {
                    // `node_total` is a true upper bound of |L ∩ a|
                    // (L ∩ a ⊆ L), so the bounded popcount's early exit
                    // is still exact — it just skips the bitmap tail once
                    // the item saturates the node.
                    *slot =
                        current.intersection_count_limited(&self.tidsets[item.index()], node_total);
                }
                for (j, &(ap, bp)) in class.members.iter().enumerate() {
                    let n_a = item_counts[ap as usize];
                    let n_b = item_counts[bp as usize];
                    let n_ab = if n_a == 0 || n_b == 0 {
                        0
                    } else {
                        let (a, b) = (class.items[ap as usize], class.items[bp as usize]);
                        current.triple_intersection_count(
                            &self.tidsets[a.index()],
                            &self.tidsets[b.index()],
                        )
                    };
                    out[j][mask | a_bit | b_bit] = n_ab as u64;
                    out[j][mask | a_bit] = (n_a - n_ab) as u64;
                    out[j][mask | b_bit] = (n_b - n_ab) as u64;
                    out[j][mask] = (node_total + n_ab - n_a - n_b) as u64;
                }
            }
            Some((&first, rest)) => {
                // Prune: an empty cell tid-set stays empty down the whole
                // subtree, and the output rows are already zeroed.
                if current.is_empty() {
                    return;
                }
                let (mine, deeper) = scratch.split_at_mut(2);
                let (with, without) = mine.split_at_mut(1);
                current.split_into(&self.tidsets[first.index()], &mut with[0], &mut without[0]);
                // Bit j of the mask corresponds to items[j] of the original
                // set; items are consumed left to right, so the bit for
                // `first` is the current depth.
                let bit = 1usize << depth;
                self.prefix_recurse(
                    &with[0],
                    rest,
                    depth + 1,
                    mask | bit,
                    class,
                    item_counts,
                    deeper,
                    out,
                );
                self.prefix_recurse(
                    &without[0],
                    rest,
                    depth + 1,
                    mask,
                    class,
                    item_counts,
                    deeper,
                    out,
                );
            }
        }
    }

    /// Grows `scratch` to cover `depths` recursion levels (two slots
    /// each).
    pub(crate) fn ensure_scratch(&self, scratch: &mut Vec<TidSet>, depths: usize) {
        while scratch.len() < 2 * depths {
            scratch.push(TidSet::new(self.n_transactions));
        }
    }
}

/// Per-item tid-sets for a transaction database.
#[derive(Debug, Clone)]
pub struct VerticalIndex {
    core: Arc<VerticalCore>,
    /// Depth-indexed arena: slots `2d` / `2d+1` hold the with/without
    /// bitmaps of recursion depth `d`. Grown on demand, reused across
    /// tables. Cloning the index shares the (immutable) core but gives
    /// the clone a fresh arena.
    scratch: Vec<TidSet>,
}

impl VerticalIndex {
    /// Builds the index in a single pass over the database.
    pub fn build(db: &TransactionDb) -> Self {
        VerticalIndex {
            core: Arc::new(VerticalCore::build(db)),
            scratch: Vec::new(),
        }
    }

    /// Wraps an existing shared core (same tid-sets, fresh arena).
    pub(crate) fn from_core(core: Arc<VerticalCore>) -> Self {
        VerticalIndex {
            core,
            scratch: Vec::new(),
        }
    }

    /// The shared immutable core, for engines that fan work out across
    /// threads.
    pub(crate) fn core(&self) -> &Arc<VerticalCore> {
        &self.core
    }

    /// Number of transactions in the indexed database.
    #[inline]
    pub fn n_transactions(&self) -> usize {
        self.core.n_transactions()
    }

    /// The scratch-arena footprint, in bytes, that counting tables over
    /// `depths` shared-prefix recursion levels requires for a database of
    /// `n_transactions` rows: two bitmaps per depth, each padded to whole
    /// cache-line superblocks and carrying its per-superblock population
    /// hints (see [`TidSet`]'s module docs). A `k`-itemset needs `k - 2`
    /// depths. Used by memory-budget checks *before* the arena grows.
    /// Parallel engines multiply by their worker count — each worker owns
    /// a full arena; the sharded engine sums the per-shard arenas, which
    /// together cover the tid range once.
    pub fn scratch_bytes(n_transactions: usize, depths: usize) -> usize {
        use crate::tidset::{SUPERBLOCK_BITS, SUPERBLOCK_WORDS};
        let supers = n_transactions.div_ceil(SUPERBLOCK_BITS);
        let per_bitmap = supers * SUPERBLOCK_WORDS * std::mem::size_of::<u64>()
            + supers * std::mem::size_of::<u32>();
        2 * depths * per_bitmap
    }

    /// Number of items in the universe.
    #[inline]
    pub fn n_items(&self) -> usize {
        self.core.n_items()
    }

    /// The tid-set of a single item.
    #[inline]
    pub fn tidset(&self, item: Item) -> &TidSet {
        self.core.tidset(item)
    }

    /// Absolute support of an itemset via tid-set intersection.
    ///
    /// Sized to its input: the 0- and 1-item cases are pure lookups, the
    /// 2-item case is an allocation-free [`TidSet::intersection_count`],
    /// and larger sets fold into a single reused accumulator.
    pub fn support(&self, set: &Itemset) -> usize {
        self.core.support(set)
    }

    /// Exact `support(set) >= s` threshold test with a bounded early
    /// exit ([`TidSet::intersection_count_limited`]): the final popcount
    /// stops as soon as `s` matching transactions have been seen. This
    /// is the fast path for the CT-support `s`-threshold check — a
    /// candidate far above the significance floor never scans its whole
    /// tid-set.
    pub fn support_at_least(&self, set: &Itemset, s: usize) -> bool {
        self.core.support_at_least(set, s)
    }

    /// Counts all `2^k` minterms (contingency-table cells) of a `k`-itemset.
    ///
    /// Cell indexing: for the sorted items `s_0 < … < s_{k-1}` of `set`, the
    /// count at index `c` is the number of transactions that contain exactly
    /// the items `{ s_j | bit j of c is 1 }` among the items of `set`
    /// (other items are unconstrained). Index `2^k - 1` is "all present",
    /// index `0` is "none present".
    ///
    /// Runs in `O(2^k · n/64)` via recursive tid-set splitting. The only
    /// heap allocation per call is the returned counts vector: interior
    /// nodes use the scratch arena and the final item pair is finished
    /// with fused popcount kernels, never materialising a bitmap.
    ///
    /// # Panics
    ///
    /// Panics if `set.len() > 20` (a `2^k` table would be astronomically
    /// large; the miners never get near this).
    pub fn minterm_counts(&mut self, set: &Itemset) -> Vec<u64> {
        let k = set.len();
        assert!(k <= 20, "refusing to build a 2^{k}-cell contingency table");
        let mut counts = vec![0u64; 1usize << k];
        match set.items() {
            [] => counts[0] = self.core.n_transactions() as u64,
            [a] => {
                let with = self.core.tidset(*a).count() as u64;
                counts[1] = with;
                counts[0] = self.core.n_transactions() as u64 - with;
            }
            [prefix @ .., a, b] => {
                // Itemset items are sorted and distinct, so [a, b] is
                // already a valid deduped suffix-item list.
                let class = OwnedClass {
                    prefix: prefix.to_vec(),
                    items: vec![*a, *b],
                    members: vec![(0, 1)],
                    rows: vec![0],
                };
                let mut item_counts = vec![0usize; 2];
                let mut out = [counts];
                self.core
                    .count_class(&class, &mut item_counts, &mut self.scratch, &mut out);
                let [c] = out;
                counts = c;
            }
        }
        counts
    }

    /// Batch minterm counting with Eclat-style prefix sharing.
    ///
    /// Candidates are grouped into equivalence classes by their
    /// `(k-2)`-item prefix (the class key of the sorted item list minus
    /// its last two elements). Each class walks the prefix's split tree
    /// **once**; at every one of its `2^(k-2)` leaves the node total and
    /// the per-item intersection counts are computed once for the whole
    /// class, so a member's marginal cost is a single
    /// [`TidSet::triple_intersection_count`] pass per leaf — its four
    /// cells follow by inclusion–exclusion. A level of `m` same-prefix
    /// candidates thus costs one tree walk plus `m` fused popcount
    /// passes per leaf instead of `m` full tree walks.
    ///
    /// Results are returned in input order; sets of mixed sizes are
    /// allowed (each size/prefix combination forms its own class).
    pub fn minterm_counts_batch(&mut self, sets: &[Itemset]) -> Vec<Vec<u64>> {
        match self.minterm_counts_batch_guarded(sets, &NoProbe) {
            Ok(results) => results,
            Err(_) => unreachable!("NoProbe never interrupts"),
        }
    }

    /// [`minterm_counts_batch`](Self::minterm_counts_batch) with a
    /// cooperative-interruption probe consulted at prefix-class
    /// boundaries: before each equivalence class is walked the probe's
    /// `should_stop` is checked, and after each class completes its cells
    /// are charged against the work budget. On interruption the batch is
    /// abandoned with a [`BatchInterrupted`] recording the tables and
    /// cells that *did* fully complete (trivial 0-/1-item sets plus every
    /// finished class); partially-walked classes are discarded.
    pub fn minterm_counts_batch_guarded(
        &mut self,
        sets: &[Itemset],
        probe: &dyn CountProbe,
    ) -> Result<Vec<Vec<u64>>, BatchInterrupted> {
        let mut results = alloc_results(sets);
        let mut done = BatchInterrupted::default();
        let plan = plan_level(&self.core, sets, &mut results, &mut done);
        if done.cells_completed > 0
            && probe.charge(done.cells_completed)
            && !plan.classes.is_empty()
        {
            return Err(done);
        }
        let max_prefix = plan
            .classes
            .iter()
            .map(|c| c.prefix.len())
            .max()
            .unwrap_or(0);
        self.core.ensure_scratch(&mut self.scratch, max_prefix);
        let interrupted = run_classes_sequential(
            &self.core,
            &plan.classes,
            probe,
            &mut self.scratch,
            &mut results,
            &mut done,
        );
        if interrupted && done.tables_completed < sets.len() as u64 {
            Err(done)
        } else {
            Ok(results)
        }
    }
}

/// Allocates the zeroed `2^k` result vector for every candidate,
/// rejecting absurd table sizes.
pub(crate) fn alloc_results(sets: &[Itemset]) -> Vec<Vec<u64>> {
    sets.iter()
        .map(|s| {
            assert!(
                s.len() <= 20,
                "refusing to build a 2^{}-cell table",
                s.len()
            );
            vec![0u64; 1usize << s.len()]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> TransactionDb {
        // 0: {a,b}  1: {a}  2: {b}  3: {}  4: {a,b}
        TransactionDb::from_ids(2, vec![vec![0, 1], vec![0], vec![1], vec![], vec![0, 1]])
    }

    #[test]
    fn supports_match_horizontal_scan() {
        let d = db();
        let v = VerticalIndex::build(&d);
        for set in [
            Itemset::empty(),
            Itemset::from_ids([0]),
            Itemset::from_ids([1]),
            Itemset::from_ids([0, 1]),
        ] {
            assert_eq!(
                v.support(&set),
                d.support(&set),
                "support mismatch for {set}"
            );
        }
    }

    #[test]
    fn support_of_larger_sets_uses_accumulator_path() {
        let d = TransactionDb::from_ids(
            4,
            vec![
                vec![0, 1, 2, 3],
                vec![0, 1, 2],
                vec![0, 1],
                vec![1, 2, 3],
                vec![],
            ],
        );
        let v = VerticalIndex::build(&d);
        for set in [
            Itemset::from_ids([0, 1, 2]),
            Itemset::from_ids([0, 1, 2, 3]),
            Itemset::from_ids([1, 2, 3]),
        ] {
            assert_eq!(
                v.support(&set),
                d.support(&set),
                "support mismatch for {set}"
            );
        }
    }

    #[test]
    fn support_at_least_matches_exact_support_on_every_threshold() {
        let d = TransactionDb::from_ids(
            4,
            vec![
                vec![0, 1, 2, 3],
                vec![0, 1, 2],
                vec![0, 1],
                vec![1, 2, 3],
                vec![],
            ],
        );
        let v = VerticalIndex::build(&d);
        for set in [
            Itemset::empty(),
            Itemset::from_ids([0]),
            Itemset::from_ids([0, 1]),
            Itemset::from_ids([0, 1, 2]),
            Itemset::from_ids([0, 1, 2, 3]),
        ] {
            let exact = v.support(&set);
            for s in 0..=d.len() + 1 {
                assert_eq!(
                    v.support_at_least(&set, s),
                    exact >= s,
                    "threshold {s} mismatch for {set} (support {exact})"
                );
            }
        }
    }

    #[test]
    fn pair_minterms_partition_the_database() {
        let mut v = VerticalIndex::build(&db());
        let counts = v.minterm_counts(&Itemset::from_ids([0, 1]));
        // bit0 = item 0 present, bit1 = item 1 present.
        assert_eq!(counts[0b00], 1); // {}
        assert_eq!(counts[0b01], 1); // {a}
        assert_eq!(counts[0b10], 1); // {b}
        assert_eq!(counts[0b11], 2); // {a,b}
        assert_eq!(counts.iter().sum::<u64>(), 5);
    }

    #[test]
    fn singleton_minterms() {
        let mut v = VerticalIndex::build(&db());
        let counts = v.minterm_counts(&Itemset::from_ids([0]));
        assert_eq!(counts, vec![2, 3]); // absent, present
    }

    #[test]
    fn empty_set_minterms_is_total_count() {
        let mut v = VerticalIndex::build(&db());
        assert_eq!(v.minterm_counts(&Itemset::empty()), vec![5]);
    }

    #[test]
    fn triple_minterms_on_richer_db() {
        let d = TransactionDb::from_ids(
            3,
            vec![
                vec![0, 1, 2],
                vec![0, 1],
                vec![0, 2],
                vec![1, 2],
                vec![2],
                vec![],
            ],
        );
        let mut v = VerticalIndex::build(&d);
        let set = Itemset::from_ids([0, 1, 2]);
        let counts = v.minterm_counts(&set);
        assert_eq!(counts.iter().sum::<u64>(), 6);
        assert_eq!(counts[0b111], 1); // {0,1,2}
        assert_eq!(counts[0b011], 1); // {0,1}
        assert_eq!(counts[0b101], 1); // {0,2}
        assert_eq!(counts[0b110], 1); // {1,2}
        assert_eq!(counts[0b100], 1); // {2}
        assert_eq!(counts[0b000], 1); // {}
        assert_eq!(counts[0b001], 0);
        assert_eq!(counts[0b010], 0);
    }

    #[test]
    fn all_present_cell_equals_support() {
        let d = db();
        let mut v = VerticalIndex::build(&d);
        let set = Itemset::from_ids([0, 1]);
        let counts = v.minterm_counts(&set);
        assert_eq!(counts[counts.len() - 1] as usize, d.support(&set));
    }

    #[test]
    fn scratch_arena_is_reused_across_tables() {
        let d = TransactionDb::from_ids(
            4,
            vec![
                vec![0, 1, 2, 3],
                vec![0, 2],
                vec![1, 3],
                vec![0, 1, 2],
                vec![3],
            ],
        );
        let mut v = VerticalIndex::build(&d);
        let first = v.minterm_counts(&Itemset::from_ids([0, 1, 2, 3]));
        let arena_after_first = v.scratch.len();
        assert_eq!(arena_after_first, 2 * 2, "k=4 splits two prefix depths");
        // Same and smaller tables must not grow the arena, and a dirty
        // arena must not corrupt later counts.
        let again = v.minterm_counts(&Itemset::from_ids([0, 1, 2, 3]));
        let smaller = v.minterm_counts(&Itemset::from_ids([1, 3]));
        assert_eq!(v.scratch.len(), arena_after_first);
        assert_eq!(first, again);
        assert_eq!(smaller.iter().sum::<u64>(), 5);
    }

    #[test]
    fn clone_shares_the_core_but_not_the_arena() {
        let d = db();
        let mut v = VerticalIndex::build(&d);
        let _ = v.minterm_counts(&Itemset::from_ids([0, 1]));
        let mut clone = v.clone();
        assert!(Arc::ptr_eq(v.core(), clone.core()));
        assert_eq!(
            clone.minterm_counts(&Itemset::from_ids([0, 1])),
            v.minterm_counts(&Itemset::from_ids([0, 1]))
        );
    }

    #[test]
    fn batch_matches_single_per_candidate() {
        let d = TransactionDb::from_ids(
            5,
            vec![
                vec![0, 1, 2, 3, 4],
                vec![0, 1, 2],
                vec![0, 3],
                vec![1, 2, 4],
                vec![2, 3, 4],
                vec![],
                vec![0, 1, 4],
            ],
        );
        let mut v = VerticalIndex::build(&d);
        // A level with shared prefixes ({0,1},{0,2} share [0]; the triples
        // share [0,1]), a mixed size, and the empty set.
        let sets = vec![
            Itemset::from_ids([0, 1]),
            Itemset::from_ids([0, 2]),
            Itemset::from_ids([0, 1, 3]),
            Itemset::from_ids([0, 1, 4]),
            Itemset::from_ids([2]),
            Itemset::empty(),
        ];
        let batch = v.minterm_counts_batch(&sets);
        assert_eq!(batch.len(), sets.len());
        for (set, got) in sets.iter().zip(&batch) {
            assert_eq!(got, &v.minterm_counts(set), "batch diverged for {set}");
        }
    }

    #[test]
    fn batch_of_empty_slice_is_empty() {
        let mut v = VerticalIndex::build(&db());
        assert!(v.minterm_counts_batch(&[]).is_empty());
    }
}
