//! [`VerticalIndex`]: a per-item tid-set index over a [`TransactionDb`].
//!
//! The vertical layout stores, for every item, the set of transaction ids
//! that contain it. Supports become tid-set intersections and full
//! contingency tables become a recursive tid-set split — no repeated
//! database scans. This is the fast counting path; the horizontal scan in
//! [`crate::counting`] is the paper-faithful one.

use crate::database::TransactionDb;
use crate::item::Item;
use crate::itemset::Itemset;
use crate::tidset::TidSet;

/// Per-item tid-sets for a transaction database.
#[derive(Debug, Clone)]
pub struct VerticalIndex {
    n_transactions: usize,
    tidsets: Vec<TidSet>,
}

impl VerticalIndex {
    /// Builds the index in a single pass over the database.
    pub fn build(db: &TransactionDb) -> Self {
        let n = db.len();
        let mut tidsets = vec![TidSet::new(n); db.n_items() as usize];
        for (tid, t) in db.transactions().enumerate() {
            for item in t {
                tidsets[item.index()].insert(tid);
            }
        }
        VerticalIndex { n_transactions: n, tidsets }
    }

    /// Number of transactions in the indexed database.
    #[inline]
    pub fn n_transactions(&self) -> usize {
        self.n_transactions
    }

    /// Number of items in the universe.
    #[inline]
    pub fn n_items(&self) -> usize {
        self.tidsets.len()
    }

    /// The tid-set of a single item.
    #[inline]
    pub fn tidset(&self, item: Item) -> &TidSet {
        &self.tidsets[item.index()]
    }

    /// Absolute support of an itemset via tid-set intersection.
    pub fn support(&self, set: &Itemset) -> usize {
        let mut items = set.iter();
        let Some(first) = items.next() else {
            return self.n_transactions;
        };
        let mut acc = self.tidsets[first.index()].clone();
        for item in items {
            acc.intersect_with(&self.tidsets[item.index()]);
            if acc.is_empty() {
                return 0;
            }
        }
        acc.count()
    }

    /// Counts all `2^k` minterms (contingency-table cells) of a `k`-itemset.
    ///
    /// Cell indexing: for the sorted items `s_0 < … < s_{k-1}` of `set`, the
    /// count at index `c` is the number of transactions that contain exactly
    /// the items `{ s_j | bit j of c is 1 }` among the items of `set`
    /// (other items are unconstrained). Index `2^k - 1` is "all present",
    /// index `0` is "none present".
    ///
    /// Runs in `O(2^k · n/64)` via recursive tid-set splitting.
    ///
    /// # Panics
    ///
    /// Panics if `set.len() > 20` (a `2^k` table would be astronomically
    /// large; the miners never get near this).
    pub fn minterm_counts(&self, set: &Itemset) -> Vec<u64> {
        let k = set.len();
        assert!(k <= 20, "refusing to build a 2^{k}-cell contingency table");
        let mut counts = vec![0u64; 1usize << k];
        let all = TidSet::full(self.n_transactions);
        self.split_recurse(set.items(), 0, all, &mut counts);
        counts
    }

    fn split_recurse(&self, items: &[Item], mask: usize, current: TidSet, counts: &mut [u64]) {
        match items.split_first() {
            None => counts[mask] = current.count() as u64,
            Some((&first, rest)) => {
                // Prune: an empty cell tid-set stays empty down the whole
                // subtree, and the counts vector is already zeroed.
                if current.is_empty() {
                    return;
                }
                let (with, without) = current.split_by(&self.tidsets[first.index()]);
                // Bit j of the mask corresponds to items[j] of the original
                // set; we process items left to right, so the bit for
                // `first` is the current depth.
                let depth_bit = 1usize << (mask_depth(counts.len(), rest.len()) - 1);
                self.split_recurse(rest, mask | depth_bit, with, counts);
                self.split_recurse(rest, mask, without, counts);
            }
        }
    }
}

/// Given the total table size `2^k` and the number of items still to be
/// processed, returns the 1-based bit position of the item being processed
/// now (items are consumed left to right, bit 0 = first item).
#[inline]
fn mask_depth(table_len: usize, remaining: usize) -> usize {
    let k = table_len.trailing_zeros() as usize;
    k - remaining
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> TransactionDb {
        // 0: {a,b}  1: {a}  2: {b}  3: {}  4: {a,b}
        TransactionDb::from_ids(2, vec![vec![0, 1], vec![0], vec![1], vec![], vec![0, 1]])
    }

    #[test]
    fn supports_match_horizontal_scan() {
        let d = db();
        let v = VerticalIndex::build(&d);
        for set in [
            Itemset::empty(),
            Itemset::from_ids([0]),
            Itemset::from_ids([1]),
            Itemset::from_ids([0, 1]),
        ] {
            assert_eq!(v.support(&set), d.support(&set), "support mismatch for {set}");
        }
    }

    #[test]
    fn pair_minterms_partition_the_database() {
        let v = VerticalIndex::build(&db());
        let counts = v.minterm_counts(&Itemset::from_ids([0, 1]));
        // bit0 = item 0 present, bit1 = item 1 present.
        assert_eq!(counts[0b00], 1); // {}
        assert_eq!(counts[0b01], 1); // {a}
        assert_eq!(counts[0b10], 1); // {b}
        assert_eq!(counts[0b11], 2); // {a,b}
        assert_eq!(counts.iter().sum::<u64>(), 5);
    }

    #[test]
    fn singleton_minterms() {
        let v = VerticalIndex::build(&db());
        let counts = v.minterm_counts(&Itemset::from_ids([0]));
        assert_eq!(counts, vec![2, 3]); // absent, present
    }

    #[test]
    fn empty_set_minterms_is_total_count() {
        let v = VerticalIndex::build(&db());
        assert_eq!(v.minterm_counts(&Itemset::empty()), vec![5]);
    }

    #[test]
    fn triple_minterms_on_richer_db() {
        let d = TransactionDb::from_ids(
            3,
            vec![vec![0, 1, 2], vec![0, 1], vec![0, 2], vec![1, 2], vec![2], vec![]],
        );
        let v = VerticalIndex::build(&d);
        let set = Itemset::from_ids([0, 1, 2]);
        let counts = v.minterm_counts(&set);
        assert_eq!(counts.iter().sum::<u64>(), 6);
        assert_eq!(counts[0b111], 1); // {0,1,2}
        assert_eq!(counts[0b011], 1); // {0,1}
        assert_eq!(counts[0b101], 1); // {0,2}
        assert_eq!(counts[0b110], 1); // {1,2}
        assert_eq!(counts[0b100], 1); // {2}
        assert_eq!(counts[0b000], 1); // {}
        assert_eq!(counts[0b001], 0);
        assert_eq!(counts[0b010], 0);
    }

    #[test]
    fn all_present_cell_equals_support() {
        let d = db();
        let v = VerticalIndex::build(&d);
        let set = Itemset::from_ids([0, 1]);
        let counts = v.minterm_counts(&set);
        assert_eq!(counts[counts.len() - 1] as usize, d.support(&set));
    }
}
