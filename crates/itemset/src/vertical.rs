//! [`VerticalIndex`]: a per-item tid-set index over a [`TransactionDb`].
//!
//! The vertical layout stores, for every item, the set of transaction ids
//! that contain it. Supports become tid-set intersections and full
//! contingency tables become a recursive tid-set split — no repeated
//! database scans. This is the fast counting path; the horizontal scan in
//! [`crate::counting`] is the paper-faithful one.
//!
//! Two allocation disciplines keep the recursion off the heap:
//!
//! * a **depth-indexed scratch arena** (two bitmaps per recursion depth,
//!   reused across every table this index ever builds), so interior
//!   recursion nodes write into preallocated slots instead of
//!   materialising fresh bitmaps;
//! * the **last two recursion levels never materialise at all** — the
//!   four leaf cells of a set's final item pair `(a, b)` under a node
//!   `L` follow by inclusion–exclusion from one fused
//!   [`TidSet::triple_intersection_count`] pass (`|L ∩ a ∩ b|`) plus
//!   `|L ∩ a|`, `|L ∩ b|`, and `|L|`.
//!
//! [`minterm_counts_batch`](VerticalIndex::minterm_counts_batch) adds
//! Eclat-style prefix sharing on top: candidates are grouped into
//! equivalence classes by their `(k-2)`-item prefix, the prefix's split
//! tree is walked once per class, and at each of its leaves the
//! class-shared quantities — the node total `|L|` and the per-item
//! counts `|L ∩ a|` — are computed once, so each member's marginal cost
//! is a single triple-intersection popcount pass per leaf.

use std::collections::BTreeMap;

use crate::counting::{BatchInterrupted, CountProbe, NoProbe};
use crate::database::TransactionDb;
use crate::item::Item;
use crate::itemset::Itemset;
use crate::tidset::TidSet;

/// One prefix-equivalence class of a level batch: the distinct suffix
/// items that appear in any member's final `(a, b)` pair, and the
/// members as `(result row, index of a, index of b)` into `items`.
/// Indexing (instead of hashing) lets every leaf fill a flat per-item
/// count buffer with one pass per distinct item.
struct ClassPlan {
    items: Vec<Item>,
    members: Vec<(usize, u32, u32)>,
}

/// Per-item tid-sets for a transaction database.
#[derive(Debug, Clone)]
pub struct VerticalIndex {
    n_transactions: usize,
    tidsets: Vec<TidSet>,
    /// Cached `TidSet::full(n)` — the root of every split recursion.
    universe: TidSet,
    /// Depth-indexed arena: slots `2d` / `2d+1` hold the with/without
    /// bitmaps of recursion depth `d`. Grown on demand, reused across
    /// tables.
    scratch: Vec<TidSet>,
}

impl VerticalIndex {
    /// Builds the index in a single pass over the database.
    pub fn build(db: &TransactionDb) -> Self {
        let n = db.len();
        let mut tidsets = vec![TidSet::new(n); db.n_items() as usize];
        for (tid, t) in db.transactions().enumerate() {
            for item in t {
                tidsets[item.index()].insert(tid);
            }
        }
        VerticalIndex {
            n_transactions: n,
            tidsets,
            universe: TidSet::full(n),
            scratch: Vec::new(),
        }
    }

    /// Number of transactions in the indexed database.
    #[inline]
    pub fn n_transactions(&self) -> usize {
        self.n_transactions
    }

    /// The scratch-arena footprint, in bytes, that counting tables over
    /// `depths` shared-prefix recursion levels requires for a database of
    /// `n_transactions` rows: two bitmaps per depth, one `u64` word per 64
    /// transactions each. A `k`-itemset needs `k - 2` depths. Used by
    /// memory-budget checks *before* the arena grows.
    pub fn scratch_bytes(n_transactions: usize, depths: usize) -> usize {
        2 * depths * (n_transactions.div_ceil(64) * std::mem::size_of::<u64>())
    }

    /// Number of items in the universe.
    #[inline]
    pub fn n_items(&self) -> usize {
        self.tidsets.len()
    }

    /// The tid-set of a single item.
    #[inline]
    pub fn tidset(&self, item: Item) -> &TidSet {
        &self.tidsets[item.index()]
    }

    /// Absolute support of an itemset via tid-set intersection.
    ///
    /// Sized to its input: the 0- and 1-item cases are pure lookups, the
    /// 2-item case is an allocation-free [`TidSet::intersection_count`],
    /// and larger sets fold into a single reused accumulator.
    pub fn support(&self, set: &Itemset) -> usize {
        let items = set.items();
        match items {
            [] => self.n_transactions,
            [a] => self.tidsets[a.index()].count(),
            [a, b] => self.tidsets[a.index()].intersection_count(&self.tidsets[b.index()]),
            [a, rest @ ..] => {
                let mut acc = self.tidsets[a.index()].clone();
                for item in rest {
                    acc.intersect_with(&self.tidsets[item.index()]);
                    if acc.is_empty() {
                        return 0;
                    }
                }
                acc.count()
            }
        }
    }

    /// Counts all `2^k` minterms (contingency-table cells) of a `k`-itemset.
    ///
    /// Cell indexing: for the sorted items `s_0 < … < s_{k-1}` of `set`, the
    /// count at index `c` is the number of transactions that contain exactly
    /// the items `{ s_j | bit j of c is 1 }` among the items of `set`
    /// (other items are unconstrained). Index `2^k - 1` is "all present",
    /// index `0` is "none present".
    ///
    /// Runs in `O(2^k · n/64)` via recursive tid-set splitting. The only
    /// heap allocation per call is the returned counts vector: interior
    /// nodes use the scratch arena and the final item pair is finished
    /// with fused popcount kernels, never materialising a bitmap.
    ///
    /// # Panics
    ///
    /// Panics if `set.len() > 20` (a `2^k` table would be astronomically
    /// large; the miners never get near this).
    pub fn minterm_counts(&mut self, set: &Itemset) -> Vec<u64> {
        let k = set.len();
        assert!(k <= 20, "refusing to build a 2^{k}-cell contingency table");
        let mut counts = vec![0u64; 1usize << k];
        match set.items() {
            [] => counts[0] = self.n_transactions as u64,
            [a] => {
                let with = self.tidsets[a.index()].count() as u64;
                counts[1] = with;
                counts[0] = self.n_transactions as u64 - with;
            }
            [prefix @ .., a, b] => {
                self.ensure_scratch(prefix.len());
                let mut scratch = std::mem::take(&mut self.scratch);
                let class = ClassPlan {
                    items: vec![*a, *b],
                    members: vec![(0usize, 0u32, 1u32)],
                };
                let mut item_counts = [0usize; 2];
                let mut results = [counts];
                self.prefix_recurse(
                    &self.universe,
                    prefix,
                    0,
                    0,
                    &class,
                    &mut item_counts,
                    &mut scratch,
                    &mut results,
                );
                self.scratch = scratch;
                let [c] = results;
                counts = c;
            }
        }
        counts
    }

    /// Batch minterm counting with Eclat-style prefix sharing.
    ///
    /// Candidates are grouped into equivalence classes by their
    /// `(k-2)`-item prefix (the class key of the sorted item list minus
    /// its last two elements). Each class walks the prefix's split tree
    /// **once**; at every one of its `2^(k-2)` leaves the node total and
    /// the per-item intersection counts are computed once for the whole
    /// class, so a member's marginal cost is a single
    /// [`TidSet::triple_intersection_count`] pass per leaf — its four
    /// cells follow by inclusion–exclusion. A level of `m` same-prefix
    /// candidates thus costs one tree walk plus `m` fused popcount
    /// passes per leaf instead of `m` full tree walks.
    ///
    /// Results are returned in input order; sets of mixed sizes are
    /// allowed (each size/prefix combination forms its own class).
    pub fn minterm_counts_batch(&mut self, sets: &[Itemset]) -> Vec<Vec<u64>> {
        match self.minterm_counts_batch_guarded(sets, &NoProbe) {
            Ok(results) => results,
            Err(_) => unreachable!("NoProbe never interrupts"),
        }
    }

    /// [`minterm_counts_batch`](Self::minterm_counts_batch) with a
    /// cooperative-interruption probe consulted at prefix-class
    /// boundaries: before each equivalence class is walked the probe's
    /// `should_stop` is checked, and after each class completes its cells
    /// are charged against the work budget. On interruption the batch is
    /// abandoned with a [`BatchInterrupted`] recording the tables and
    /// cells that *did* fully complete (trivial 0-/1-item sets plus every
    /// finished class); partially-walked classes are discarded.
    pub fn minterm_counts_batch_guarded(
        &mut self,
        sets: &[Itemset],
        probe: &dyn CountProbe,
    ) -> Result<Vec<Vec<u64>>, BatchInterrupted> {
        let mut results: Vec<Vec<u64>> = sets
            .iter()
            .map(|s| {
                assert!(
                    s.len() <= 20,
                    "refusing to build a 2^{}-cell table",
                    s.len()
                );
                vec![0u64; 1usize << s.len()]
            })
            .collect();
        let mut done = BatchInterrupted::default();
        // Equivalence classes: prefix -> (candidate index, last two items).
        // 0- and 1-item sets are answered inline from the index (no tree
        // walk) and count as completed work immediately.
        let mut classes: BTreeMap<&[Item], Vec<(usize, Item, Item)>> = BTreeMap::new();
        for (i, set) in sets.iter().enumerate() {
            match set.items() {
                [] => {
                    results[i][0] = self.n_transactions as u64;
                    done.tables_completed += 1;
                    done.cells_completed += 1;
                }
                [a] => {
                    let with = self.tidsets[a.index()].count() as u64;
                    results[i][1] = with;
                    results[i][0] = self.n_transactions as u64 - with;
                    done.tables_completed += 1;
                    done.cells_completed += 2;
                }
                [prefix @ .., a, b] => classes.entry(prefix).or_default().push((i, *a, *b)),
            }
        }
        if done.cells_completed > 0 && probe.charge(done.cells_completed) && !classes.is_empty() {
            return Err(done);
        }
        let max_prefix = classes.keys().map(|p| p.len()).max().unwrap_or(0);
        self.ensure_scratch(max_prefix);
        let mut scratch = std::mem::take(&mut self.scratch);
        // One flat per-item count buffer, sized once for the widest class
        // and reused by every leaf of every class.
        let mut item_counts: Vec<usize> = Vec::new();
        let mut interrupted = false;
        for (prefix, raw) in &classes {
            if probe.should_stop() {
                interrupted = true;
                break;
            }
            let mut items: Vec<Item> = raw.iter().flat_map(|&(_, a, b)| [a, b]).collect();
            items.sort_unstable();
            items.dedup();
            // `items` was deduped from exactly these members, so the
            // search cannot miss.
            #[allow(clippy::unwrap_used)]
            let pos = |item: Item| items.binary_search(&item).unwrap() as u32;
            let members = raw.iter().map(|&(ci, a, b)| (ci, pos(a), pos(b))).collect();
            let class = ClassPlan { items, members };
            if item_counts.len() < class.items.len() {
                item_counts.resize(class.items.len(), 0);
            }
            self.prefix_recurse(
                &self.universe,
                prefix,
                0,
                0,
                &class,
                &mut item_counts,
                &mut scratch,
                &mut results,
            );
            let class_cells: u64 = raw.iter().map(|&(ci, _, _)| results[ci].len() as u64).sum();
            done.tables_completed += raw.len() as u64;
            done.cells_completed += class_cells;
            if probe.charge(class_cells) {
                interrupted = true;
                break;
            }
        }
        self.scratch = scratch;
        if interrupted && done.tables_completed < sets.len() as u64 {
            Err(done)
        } else {
            Ok(results)
        }
    }

    /// Walks the split tree of `prefix`, then finishes every member
    /// (candidate index, suffix item pair) at each leaf.
    ///
    /// `scratch` holds the arena slots for depths `>= depth`; interior
    /// nodes split into the first two slots and recurse with the rest, so
    /// a node's bitmaps stay live (and untouched) while its subtree runs.
    #[allow(clippy::too_many_arguments)]
    fn prefix_recurse(
        &self,
        current: &TidSet,
        prefix: &[Item],
        depth: usize,
        mask: usize,
        class: &ClassPlan,
        item_counts: &mut [usize],
        scratch: &mut [TidSet],
        results: &mut [Vec<u64>],
    ) {
        match prefix.split_first() {
            None => {
                // Leaf of the shared prefix tree: no bitmap ever
                // materialises here. The node total and the per-item
                // counts are class-shared (one popcount pass per distinct
                // suffix item, written into the flat buffer); each member
                // then pays a single fused triple-intersection pass, and
                // its remaining three cells follow by inclusion–exclusion.
                let node_total = current.count();
                if node_total == 0 {
                    return; // the results rows are already zeroed
                }
                let a_bit = 1usize << depth;
                let b_bit = 1usize << (depth + 1);
                for (slot, item) in item_counts.iter_mut().zip(&class.items) {
                    *slot = current.intersection_count(&self.tidsets[item.index()]);
                }
                for &(ci, ap, bp) in &class.members {
                    let (a, b) = (class.items[ap as usize], class.items[bp as usize]);
                    let n_a = item_counts[ap as usize];
                    let n_b = item_counts[bp as usize];
                    let n_ab = current.triple_intersection_count(
                        &self.tidsets[a.index()],
                        &self.tidsets[b.index()],
                    );
                    results[ci][mask | a_bit | b_bit] = n_ab as u64;
                    results[ci][mask | a_bit] = (n_a - n_ab) as u64;
                    results[ci][mask | b_bit] = (n_b - n_ab) as u64;
                    results[ci][mask] = (node_total + n_ab - n_a - n_b) as u64;
                }
            }
            Some((&first, rest)) => {
                // Prune: an empty cell tid-set stays empty down the whole
                // subtree, and the results vectors are already zeroed.
                if current.is_empty() {
                    return;
                }
                let (mine, deeper) = scratch.split_at_mut(2);
                let (with, without) = mine.split_at_mut(1);
                current.split_into(&self.tidsets[first.index()], &mut with[0], &mut without[0]);
                // Bit j of the mask corresponds to items[j] of the original
                // set; items are consumed left to right, so the bit for
                // `first` is the current depth.
                let bit = 1usize << depth;
                self.prefix_recurse(
                    &with[0],
                    rest,
                    depth + 1,
                    mask | bit,
                    class,
                    item_counts,
                    deeper,
                    results,
                );
                self.prefix_recurse(
                    &without[0],
                    rest,
                    depth + 1,
                    mask,
                    class,
                    item_counts,
                    deeper,
                    results,
                );
            }
        }
    }

    /// Grows the arena to cover `depths` recursion levels (two slots each).
    fn ensure_scratch(&mut self, depths: usize) {
        while self.scratch.len() < 2 * depths {
            self.scratch.push(TidSet::new(self.n_transactions));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> TransactionDb {
        // 0: {a,b}  1: {a}  2: {b}  3: {}  4: {a,b}
        TransactionDb::from_ids(2, vec![vec![0, 1], vec![0], vec![1], vec![], vec![0, 1]])
    }

    #[test]
    fn supports_match_horizontal_scan() {
        let d = db();
        let v = VerticalIndex::build(&d);
        for set in [
            Itemset::empty(),
            Itemset::from_ids([0]),
            Itemset::from_ids([1]),
            Itemset::from_ids([0, 1]),
        ] {
            assert_eq!(
                v.support(&set),
                d.support(&set),
                "support mismatch for {set}"
            );
        }
    }

    #[test]
    fn support_of_larger_sets_uses_accumulator_path() {
        let d = TransactionDb::from_ids(
            4,
            vec![
                vec![0, 1, 2, 3],
                vec![0, 1, 2],
                vec![0, 1],
                vec![1, 2, 3],
                vec![],
            ],
        );
        let v = VerticalIndex::build(&d);
        for set in [
            Itemset::from_ids([0, 1, 2]),
            Itemset::from_ids([0, 1, 2, 3]),
            Itemset::from_ids([1, 2, 3]),
        ] {
            assert_eq!(
                v.support(&set),
                d.support(&set),
                "support mismatch for {set}"
            );
        }
    }

    #[test]
    fn pair_minterms_partition_the_database() {
        let mut v = VerticalIndex::build(&db());
        let counts = v.minterm_counts(&Itemset::from_ids([0, 1]));
        // bit0 = item 0 present, bit1 = item 1 present.
        assert_eq!(counts[0b00], 1); // {}
        assert_eq!(counts[0b01], 1); // {a}
        assert_eq!(counts[0b10], 1); // {b}
        assert_eq!(counts[0b11], 2); // {a,b}
        assert_eq!(counts.iter().sum::<u64>(), 5);
    }

    #[test]
    fn singleton_minterms() {
        let mut v = VerticalIndex::build(&db());
        let counts = v.minterm_counts(&Itemset::from_ids([0]));
        assert_eq!(counts, vec![2, 3]); // absent, present
    }

    #[test]
    fn empty_set_minterms_is_total_count() {
        let mut v = VerticalIndex::build(&db());
        assert_eq!(v.minterm_counts(&Itemset::empty()), vec![5]);
    }

    #[test]
    fn triple_minterms_on_richer_db() {
        let d = TransactionDb::from_ids(
            3,
            vec![
                vec![0, 1, 2],
                vec![0, 1],
                vec![0, 2],
                vec![1, 2],
                vec![2],
                vec![],
            ],
        );
        let mut v = VerticalIndex::build(&d);
        let set = Itemset::from_ids([0, 1, 2]);
        let counts = v.minterm_counts(&set);
        assert_eq!(counts.iter().sum::<u64>(), 6);
        assert_eq!(counts[0b111], 1); // {0,1,2}
        assert_eq!(counts[0b011], 1); // {0,1}
        assert_eq!(counts[0b101], 1); // {0,2}
        assert_eq!(counts[0b110], 1); // {1,2}
        assert_eq!(counts[0b100], 1); // {2}
        assert_eq!(counts[0b000], 1); // {}
        assert_eq!(counts[0b001], 0);
        assert_eq!(counts[0b010], 0);
    }

    #[test]
    fn all_present_cell_equals_support() {
        let d = db();
        let mut v = VerticalIndex::build(&d);
        let set = Itemset::from_ids([0, 1]);
        let counts = v.minterm_counts(&set);
        assert_eq!(counts[counts.len() - 1] as usize, d.support(&set));
    }

    #[test]
    fn scratch_arena_is_reused_across_tables() {
        let d = TransactionDb::from_ids(
            4,
            vec![
                vec![0, 1, 2, 3],
                vec![0, 2],
                vec![1, 3],
                vec![0, 1, 2],
                vec![3],
            ],
        );
        let mut v = VerticalIndex::build(&d);
        let first = v.minterm_counts(&Itemset::from_ids([0, 1, 2, 3]));
        let arena_after_first = v.scratch.len();
        assert_eq!(arena_after_first, 2 * 2, "k=4 splits two prefix depths");
        // Same and smaller tables must not grow the arena, and a dirty
        // arena must not corrupt later counts.
        let again = v.minterm_counts(&Itemset::from_ids([0, 1, 2, 3]));
        let smaller = v.minterm_counts(&Itemset::from_ids([1, 3]));
        assert_eq!(v.scratch.len(), arena_after_first);
        assert_eq!(first, again);
        assert_eq!(smaller.iter().sum::<u64>(), 5);
    }

    #[test]
    fn batch_matches_single_per_candidate() {
        let d = TransactionDb::from_ids(
            5,
            vec![
                vec![0, 1, 2, 3, 4],
                vec![0, 1, 2],
                vec![0, 3],
                vec![1, 2, 4],
                vec![2, 3, 4],
                vec![],
                vec![0, 1, 4],
            ],
        );
        let mut v = VerticalIndex::build(&d);
        // A level with shared prefixes ({0,1},{0,2} share [0]; the triples
        // share [0,1]), a mixed size, and the empty set.
        let sets = vec![
            Itemset::from_ids([0, 1]),
            Itemset::from_ids([0, 2]),
            Itemset::from_ids([0, 1, 3]),
            Itemset::from_ids([0, 1, 4]),
            Itemset::from_ids([2]),
            Itemset::empty(),
        ];
        let batch = v.minterm_counts_batch(&sets);
        assert_eq!(batch.len(), sets.len());
        for (set, got) in sets.iter().zip(&batch) {
            assert_eq!(got, &v.minterm_counts(set), "batch diverged for {set}");
        }
    }

    #[test]
    fn batch_of_empty_slice_is_empty() {
        let mut v = VerticalIndex::build(&db());
        assert!(v.minterm_counts_batch(&[]).is_empty());
    }
}
