//! [`FpTree`]: pattern-growth minterm counting over a compressed prefix
//! tree.
//!
//! The vertical substrates (tid-set intersection, pooled classes,
//! sharded ranges) all pay per-candidate work proportional to the
//! database's *transaction count* — every contingency table walks
//! bitmaps of `n` bits. On dense, low-cardinality databases that is the
//! wrong currency: transactions cluster into a few distinct profiles,
//! and an FP-tree (Han-Pei-Yin) compresses the whole database into one
//! prefix tree whose size tracks the number of *distinct transaction
//! prefixes*, not the number of transactions. Counting then works on
//! the tree, so its cost is independent of how many baskets share a
//! profile — the regime where pattern growth beats Apriori-shaped
//! candidate intersection off its home turf (ROADMAP item 3).
//!
//! # Tree layout
//!
//! One arena of parent-linked nodes. Items are ordered by descending
//! whole-database support (ties broken by item id, so construction is
//! deterministic); each transaction is sorted into that order and
//! inserted root-down, sharing the longest existing prefix and bumping
//! the shared nodes' counts. A *header table* keeps, per item, the list
//! of that item's nodes (the classic node-links, stored as a vector in
//! creation order).
//!
//! # Counting a contingency table
//!
//! For a candidate `S` with items at tree ranks `r_0 < … < r_{k-1}`,
//! walking item `r_i`'s node-links gives, per node, its count and the
//! exact set of `S`-items on the node's root path. Because transactions
//! are inserted in rank order, a node's ancestors are *precisely* the
//! transaction's items of smaller rank — so each node contributes its
//! count to the cell "contains `r_i`, exactly this subset of the
//! shallower `S`-items, deeper `S`-items unconstrained". One
//! deepest-first inclusion-exclusion pass then strips the
//! "unconstrained deeper" slack (each cell subtracts its already-exact
//! deeper extensions), and the all-absent cell is the remainder against
//! the transaction count. `k` node-link walks per candidate, no
//! per-candidate tid-set work at all.
//!
//! # Batching: conditional projections, memoized
//!
//! [`FpTree::minterm_counts_batch_guarded`] groups a level's candidates
//! by their *suffix item* (the deepest-ranked member) and materialises
//! each header item's **conditional projection** — the node-link chain
//! flattened into `(root-path items, count)` entries — at most once per
//! batch, memoized across every candidate that touches the item. A
//! dense level whose candidates are drawn from one correlated module
//! thus pays one projection per header item plus a cheap mask fold per
//! candidate, instead of one intersection recursion per candidate.
//!
//! # Interruption and degradation
//!
//! The guarded batch checks the [`CountProbe`] at every projection
//! boundary (before each candidate's projection walks) and charges each
//! completed table, so a trip abandons the batch with exact
//! completed-candidate accounting — identical first-trip-wins contract
//! to the vertical engines; a half-counted table never escapes.
//! [`FpTreeCounter`] adds the memory-pressure ladder: when a probe's
//! arena budget cannot hold the batch's memoized projections it
//! degrades (stickily) to a lazily built [`VerticalIndex`], and below
//! that to guarded horizontal scans.

use std::collections::{BTreeMap, HashMap};

use crate::counting::{
    horizontal_batch_guarded, BatchInterrupted, CountProbe, CountingStats, MintermCounter, NoProbe,
};
use crate::database::TransactionDb;
use crate::itemset::Itemset;
use crate::vertical::{alloc_results, VerticalIndex};
use crate::vertical_par::DegradationRung;

/// Sentinel in the item→cell-bit scratch map: item not in the candidate.
const NOT_IN_SET: u32 = u32::MAX;

/// Fixed per-entry overhead charged when estimating a conditional
/// projection's memory footprint: the count plus the path vector's
/// header, before the per-path-item bytes.
const PROJ_ENTRY_BYTES: u64 = 24;

/// One FP-tree node: its item, the number of transactions whose sorted
/// prefix runs through it, its parent (0 is the root sentinel), and its
/// depth (root children have depth 1).
#[derive(Debug, Clone, Copy)]
struct Node {
    item: u32,
    count: u64,
    parent: u32,
    depth: u32,
}

/// One entry of an item's conditional projection: the items on one of
/// its nodes' root paths (order irrelevant — only membership is folded
/// into cell masks) and that node's transaction count.
#[derive(Debug, Clone)]
struct PathCount {
    path: Box<[u32]>,
    count: u64,
}

/// A compressed prefix tree over a [`TransactionDb`], with a header
/// table of per-item node-links, built in one insertion pass.
#[derive(Debug, Clone)]
pub struct FpTree {
    n_transactions: usize,
    /// `rank_of[item]` is the item's position in the support-descending
    /// tree order (ties broken by item id).
    rank_of: Vec<u32>,
    /// Whole-database absolute support per item, for trivial tables.
    item_supports: Vec<u64>,
    /// Node arena; `nodes[0]` is the root sentinel.
    nodes: Vec<Node>,
    /// Header table: `headers[item]` lists the item's nodes.
    headers: Vec<Vec<u32>>,
    /// Estimated bytes of each item's materialised conditional
    /// projection, for memory-budget checks *before* anything grows.
    proj_bytes: Vec<u64>,
}

impl FpTree {
    /// Builds the tree: one support-counting pass to fix the item order,
    /// then one insertion pass over the transactions.
    pub fn build(db: &TransactionDb) -> Self {
        let n_items = db.n_items() as usize;
        let supports = db.item_supports();
        let mut order: Vec<u32> = (0..db.n_items()).collect();
        order.sort_unstable_by_key(|&i| (std::cmp::Reverse(supports[i as usize]), i));
        let mut rank_of = vec![0u32; n_items];
        for (rank, &item) in order.iter().enumerate() {
            rank_of[item as usize] = rank as u32;
        }
        let mut nodes = vec![Node {
            item: u32::MAX,
            count: 0,
            parent: 0,
            depth: 0,
        }];
        let mut headers: Vec<Vec<u32>> = vec![Vec::new(); n_items];
        // Child links are only needed while inserting; lookups never
        // iterate the map, so the tree stays deterministic.
        let mut children: HashMap<(u32, u32), u32> = HashMap::new();
        let mut sorted: Vec<u32> = Vec::new();
        for t in db.transactions() {
            sorted.clear();
            sorted.extend(t.iter().map(|i| i.id()));
            sorted.sort_unstable_by_key(|&i| rank_of[i as usize]);
            let mut at = 0u32;
            for &item in &sorted {
                at = match children.get(&(at, item)) {
                    Some(&n) => {
                        nodes[n as usize].count += 1;
                        n
                    }
                    None => {
                        let n = nodes.len() as u32;
                        nodes.push(Node {
                            item,
                            count: 1,
                            parent: at,
                            depth: nodes[at as usize].depth + 1,
                        });
                        children.insert((at, item), n);
                        headers[item as usize].push(n);
                        n
                    }
                };
            }
        }
        let proj_bytes = headers
            .iter()
            .map(|chain| {
                chain
                    .iter()
                    .map(|&n| PROJ_ENTRY_BYTES + 4 * u64::from(nodes[n as usize].depth - 1))
                    .sum()
            })
            .collect();
        FpTree {
            n_transactions: db.len(),
            rank_of,
            item_supports: supports.into_iter().map(|s| s as u64).collect(),
            nodes,
            headers,
            proj_bytes,
        }
    }

    /// Number of transactions the tree compresses.
    #[inline]
    pub fn n_transactions(&self) -> usize {
        self.n_transactions
    }

    /// Number of items in the universe.
    #[inline]
    pub fn n_items(&self) -> usize {
        self.headers.len()
    }

    /// Number of tree nodes (excluding the root sentinel) — the measure
    /// of how well the database compressed.
    #[inline]
    pub fn n_nodes(&self) -> usize {
        self.nodes.len() - 1
    }

    /// Estimated bytes of the memoized conditional projections a batch
    /// over `sets` materialises (each distinct item's projection is
    /// built at most once). Used by [`FpTreeCounter`]'s memory-budget
    /// check *before* any projection is built.
    pub fn projection_bytes(&self, sets: &[Itemset]) -> u64 {
        let mut seen = vec![false; self.headers.len()];
        let mut total = 0u64;
        for set in sets {
            if set.len() < 2 {
                continue; // trivial sets never walk a projection
            }
            for item in set.items() {
                if !seen[item.index()] {
                    seen[item.index()] = true;
                    total += self.proj_bytes[item.index()];
                }
            }
        }
        total
    }

    /// Materialises item's conditional projection: one `(path, count)`
    /// entry per node on its node-link chain.
    fn projection(&self, item: u32) -> Vec<PathCount> {
        self.headers[item as usize]
            .iter()
            .map(|&n| {
                let node = &self.nodes[n as usize];
                let mut path = Vec::with_capacity(node.depth.saturating_sub(1) as usize);
                let mut p = node.parent;
                while p != 0 {
                    path.push(self.nodes[p as usize].item);
                    p = self.nodes[p as usize].parent;
                }
                PathCount {
                    path: path.into_boxed_slice(),
                    count: node.count,
                }
            })
            .collect()
    }

    /// Counts all `2^k` cells of `set` into `out` (zeroed, `2^k` long).
    /// Cell indexing follows [`VerticalIndex::minterm_counts`]: bit `j`
    /// of the cell index is 1 iff the `j`-th smallest item of `set` is
    /// present. `bit_of` is reusable scratch of `n_items` entries, all
    /// [`NOT_IN_SET`] on entry and restored to that on exit.
    fn count_set_into(
        &self,
        set: &Itemset,
        cache: &mut HashMap<u32, Vec<PathCount>>,
        bit_of: &mut [u32],
        out: &mut [u64],
    ) {
        let k = set.len();
        debug_assert_eq!(out.len(), 1usize << k);
        let n = self.n_transactions as u64;
        match set.items() {
            [] => {
                out[0] = n;
                return;
            }
            [a] => {
                let s = self.item_supports[a.index()];
                out[1] = s;
                out[0] = n - s;
                return;
            }
            _ => {}
        }
        // The candidate's items in tree order (shallowest first), each
        // carrying its cell-index bit from the original sorted-item
        // position.
        let mut by_rank: Vec<(u32, u32, usize)> = set
            .items()
            .iter()
            .enumerate()
            .map(|(j, item)| (self.rank_of[item.index()], item.id(), 1usize << j))
            .collect();
        by_rank.sort_unstable();
        for &(_, id, bit) in &by_rank {
            bit_of[id as usize] = bit as u32;
        }
        // Pass 1: each item's projection scatters node counts to the
        // cell "this item present, exactly this shallower subset,
        // deeper items unconstrained". Paths only ever contain
        // smaller-rank items, so the fold needs no rank filtering.
        for &(_, id, bit) in &by_rank {
            let projection = cache.entry(id).or_insert_with(|| self.projection(id));
            for pc in projection.iter() {
                let mut mask = 0usize;
                for &p in pc.path.iter() {
                    let b = bit_of[p as usize];
                    if b != NOT_IN_SET {
                        mask |= b as usize;
                    }
                }
                out[mask | bit] += pc.count;
            }
        }
        // Pass 2, deepest item first: strip the "deeper unconstrained"
        // slack. A cell whose deepest item is r_i subtracts every
        // already-exact extension of itself by deeper items.
        for i in (0..k).rev() {
            let bit_i = by_rank[i].2;
            let deeper: usize = by_rank[i + 1..].iter().map(|e| e.2).sum();
            if deeper == 0 {
                continue;
            }
            let shallow: usize = by_rank[..i].iter().map(|e| e.2).sum();
            let mut sub = shallow;
            loop {
                let cell = sub | bit_i;
                let mut d = deeper;
                while d != 0 {
                    out[cell] -= out[cell | d];
                    d = (d - 1) & deeper;
                }
                if sub == 0 {
                    break;
                }
                sub = (sub - 1) & shallow;
            }
        }
        // The all-absent cell is whatever the k walks never reached.
        out[0] = n - out[1..].iter().sum::<u64>();
        for &(_, id, _) in &by_rank {
            bit_of[id as usize] = NOT_IN_SET;
        }
    }

    /// Counts all `2^k` minterms of a `k`-itemset from the tree.
    ///
    /// # Panics
    ///
    /// Panics if `set.len() > 20` (as every counting substrate does).
    pub fn minterm_counts(&self, set: &Itemset) -> Vec<u64> {
        let sets = std::slice::from_ref(set);
        let mut results = alloc_results(sets);
        let mut cache = HashMap::new();
        let mut bit_of = vec![NOT_IN_SET; self.headers.len()];
        self.count_set_into(set, &mut cache, &mut bit_of, &mut results[0]);
        results.swap_remove(0)
    }

    /// Batch minterm counting with per-batch projection memoization;
    /// results come back in input order.
    pub fn minterm_counts_batch(&self, sets: &[Itemset]) -> Vec<Vec<u64>> {
        match self.minterm_counts_batch_guarded(sets, &NoProbe) {
            Ok(results) => results,
            Err(_) => unreachable!("NoProbe never interrupts"),
        }
    }

    /// [`minterm_counts_batch`](Self::minterm_counts_batch) with a
    /// cooperative-interruption probe consulted at projection
    /// boundaries: trivial 0-/1-item candidates are answered (and
    /// charged) up front from whole-tree totals, then candidates run
    /// grouped by suffix item, with `should_stop` checked before and
    /// the table charged after each one. On interruption the batch is
    /// abandoned with a [`BatchInterrupted`] carrying exact
    /// completed-candidate accounting; in-flight tables are discarded.
    pub fn minterm_counts_batch_guarded(
        &self,
        sets: &[Itemset],
        probe: &dyn CountProbe,
    ) -> Result<Vec<Vec<u64>>, BatchInterrupted> {
        let mut results = alloc_results(sets);
        let mut done = BatchInterrupted::default();
        let n = self.n_transactions as u64;
        // Group non-trivial candidates by suffix item (deepest tree
        // rank), so one suffix's projections stay hot across its group;
        // the BTreeMap keeps the walk order deterministic.
        let mut groups: BTreeMap<u32, Vec<usize>> = BTreeMap::new();
        for (i, set) in sets.iter().enumerate() {
            match set.items() {
                [] => {
                    results[i][0] = n;
                    done.tables_completed += 1;
                    done.cells_completed += 1;
                }
                [a] => {
                    let s = self.item_supports[a.index()];
                    results[i][1] = s;
                    results[i][0] = n - s;
                    done.tables_completed += 1;
                    done.cells_completed += 2;
                }
                items => {
                    // Items are non-empty here, so the max exists.
                    #[allow(clippy::unwrap_used)]
                    let suffix = items
                        .iter()
                        .map(|item| self.rank_of[item.index()])
                        .max()
                        .unwrap();
                    groups.entry(suffix).or_default().push(i);
                }
            }
        }
        if done.cells_completed > 0 && probe.charge(done.cells_completed) && !groups.is_empty() {
            return Err(done);
        }
        let mut cache: HashMap<u32, Vec<PathCount>> = HashMap::new();
        let mut bit_of = vec![NOT_IN_SET; self.headers.len()];
        let mut interrupted = false;
        'level: for rows in groups.values() {
            for &row in rows {
                if probe.should_stop() {
                    interrupted = true;
                    break 'level;
                }
                // The row's table is written in place; the candidate
                // completes atomically from the caller's point of view
                // because any interruption above discards `results`.
                let mut table = std::mem::take(&mut results[row]);
                self.count_set_into(&sets[row], &mut cache, &mut bit_of, &mut table);
                results[row] = table;
                let cells = 1u64 << sets[row].len();
                done.tables_completed += 1;
                done.cells_completed += cells;
                if probe.charge(cells) {
                    interrupted = true;
                    break 'level;
                }
            }
        }
        if interrupted && done.tables_completed < sets.len() as u64 {
            Err(done)
        } else {
            Ok(results)
        }
    }
}

/// Pattern-growth counter: answers contingency tables from an
/// [`FpTree`], degrading under memory pressure through the same sticky,
/// downward-only ladder as the other tiered counters:
///
/// * [`DegradationRung::Parallel`] — the FP-tree rung (the preferred
///   substrate; the name is shared with the pooled counters, where the
///   top rung happens to be parallel);
/// * [`DegradationRung::Vertical`] — a full-range [`VerticalIndex`]
///   twin, built lazily on first degradation (one extra database scan,
///   recorded in [`CountingStats::db_scans`]);
/// * [`DegradationRung::Horizontal`] — guarded horizontal scans.
///
/// Any batch answered below the top rung increments
/// [`CountingStats::degraded_batches`]; all per-batch stats merge
/// through `CountingStats`'s `AddAssign`, the single merge path every
/// counter shares.
#[derive(Debug)]
pub struct FpTreeCounter<'a> {
    db: &'a TransactionDb,
    tree: FpTree,
    /// Vertical twin for the middle rung, built only if the ladder
    /// ever drops there.
    seq: Option<VerticalIndex>,
    stats: CountingStats,
    rung: DegradationRung,
}

impl<'a> FpTreeCounter<'a> {
    /// Builds the FP-tree (one support-ordering pass plus one insertion
    /// pass, recorded as two database scans) and wraps it.
    pub fn new(db: &'a TransactionDb) -> Self {
        FpTreeCounter {
            db,
            tree: FpTree::build(db),
            seq: None,
            stats: CountingStats {
                db_scans: 2,
                ..CountingStats::default()
            },
            rung: DegradationRung::Parallel,
        }
    }

    /// Direct access to the underlying tree.
    pub fn tree(&self) -> &FpTree {
        &self.tree
    }

    /// The ladder rung the next batch will be answered from
    /// (`Parallel` denotes the FP-tree rung).
    pub fn rung(&self) -> DegradationRung {
        self.rung
    }

    /// Applies the (sticky, downward-only) degradation ladder for a
    /// batch over `sets` needing `depths` vertical scratch levels.
    fn apply_ladder(&mut self, probe: &dyn CountProbe, sets: &[Itemset], depths: usize) {
        let Some(budget) = probe.arena_budget_bytes() else {
            return;
        };
        if self.rung == DegradationRung::Parallel
            && self.tree.projection_bytes(sets) > budget as u64
        {
            self.rung = DegradationRung::Vertical;
        }
        if self.rung == DegradationRung::Vertical
            && VerticalIndex::scratch_bytes(self.tree.n_transactions(), depths) > budget
        {
            self.rung = DegradationRung::Horizontal;
        }
    }

    /// The vertical index for the middle rung, built on first use (one
    /// extra database scan, recorded in the stats).
    fn seq_index(&mut self) -> &mut VerticalIndex {
        if self.seq.is_none() {
            self.seq = Some(VerticalIndex::build(self.db));
            self.stats.db_scans += 1;
        }
        // Just installed above if absent.
        #[allow(clippy::expect_used)]
        self.seq.as_mut().expect("vertical twin just built")
    }
}

impl MintermCounter for FpTreeCounter<'_> {
    fn minterm_counts(&mut self, set: &Itemset) -> Vec<u64> {
        self.stats += CountingStats::tables(1, 1u64 << set.len());
        self.tree.minterm_counts(set)
    }

    fn minterm_counts_batch(&mut self, sets: &[Itemset]) -> Vec<Vec<u64>> {
        match self.minterm_counts_batch_guarded(sets, &NoProbe) {
            Ok(tables) => tables,
            Err(_) => unreachable!("NoProbe never interrupts"),
        }
    }

    fn minterm_counts_batch_guarded(
        &mut self,
        sets: &[Itemset],
        probe: &dyn CountProbe,
    ) -> Result<Vec<Vec<u64>>, BatchInterrupted> {
        if sets.is_empty() {
            return Ok(Vec::new());
        }
        let depths = sets
            .iter()
            .map(|s| s.len().saturating_sub(2))
            .max()
            .unwrap_or(0);
        self.apply_ladder(probe, sets, depths);
        let outcome = match self.rung {
            DegradationRung::Parallel => self.tree.minterm_counts_batch_guarded(sets, probe),
            DegradationRung::Vertical => {
                self.stats.degraded_batches += 1;
                self.seq_index().minterm_counts_batch_guarded(sets, probe)
            }
            DegradationRung::Horizontal => {
                self.stats.degraded_batches += 1;
                return horizontal_batch_guarded(self.db, sets, probe, &mut self.stats);
            }
        };
        match outcome {
            Ok(tables) => {
                self.stats += CountingStats::tables(
                    sets.len() as u64,
                    sets.iter().map(|s| 1u64 << s.len()).sum::<u64>(),
                );
                Ok(tables)
            }
            Err(partial) => {
                self.stats +=
                    CountingStats::tables(partial.tables_completed, partial.cells_completed);
                Err(partial)
            }
        }
    }

    fn n_transactions(&self) -> usize {
        self.tree.n_transactions()
    }

    fn stats(&self) -> CountingStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counting::HorizontalCounter;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn db() -> TransactionDb {
        TransactionDb::from_ids(
            5,
            vec![
                vec![0, 1, 2],
                vec![0, 1],
                vec![0, 2],
                vec![1, 2],
                vec![2],
                vec![],
                vec![3],
                vec![0, 1, 2, 3],
                vec![0, 1, 2, 3],
                vec![2, 3],
            ],
        )
    }

    fn level() -> Vec<Itemset> {
        vec![
            Itemset::empty(),
            Itemset::from_ids([3]),
            Itemset::from_ids([0, 1]),
            Itemset::from_ids([0, 2]),
            Itemset::from_ids([1, 2]),
            Itemset::from_ids([0, 1, 2]),
            Itemset::from_ids([1, 2, 3]),
            Itemset::from_ids([0, 1, 2, 3]),
            Itemset::from_ids([4]),
            Itemset::from_ids([0, 4]),
        ]
    }

    #[test]
    fn tree_compresses_shared_prefixes() {
        let t = FpTree::build(&db());
        // 10 transactions insert far fewer nodes than their total item
        // count because profiles share prefixes.
        assert!(t.n_nodes() < 20, "no compression: {} nodes", t.n_nodes());
        assert_eq!(t.n_transactions(), 10);
    }

    #[test]
    fn tables_match_horizontal_reference() {
        let d = db();
        let t = FpTree::build(&d);
        let mut h = HorizontalCounter::new(&d);
        for set in level() {
            assert_eq!(
                t.minterm_counts(&set),
                h.minterm_counts(&set),
                "fp-tree diverged for {set}"
            );
        }
    }

    #[test]
    fn batch_matches_singles_and_counter_matches_horizontal() {
        let d = db();
        let sets = level();
        let t = FpTree::build(&d);
        let batch = t.minterm_counts_batch(&sets);
        for (set, got) in sets.iter().zip(&batch) {
            assert_eq!(got, &t.minterm_counts(set), "batch diverged for {set}");
        }
        let mut c = FpTreeCounter::new(&d);
        let mut h = HorizontalCounter::new(&d);
        assert_eq!(c.minterm_counts_batch(&sets), h.minterm_counts_batch(&sets));
        assert_eq!(c.stats().tables_built, sets.len() as u64);
        assert_eq!(c.stats().db_scans, 2, "tree build is two passes");
    }

    #[test]
    fn counts_partition_the_database() {
        let d = db();
        let t = FpTree::build(&d);
        for set in level() {
            let counts = t.minterm_counts(&set);
            assert_eq!(
                counts.iter().sum::<u64>() as usize,
                d.len(),
                "cells of {set} do not partition the database"
            );
        }
    }

    /// A probe that stops after a fixed number of charged cells.
    struct Budget {
        cells: u64,
        spent: AtomicU64,
    }

    impl Budget {
        fn new(cells: u64) -> Self {
            Budget {
                cells,
                spent: AtomicU64::new(0),
            }
        }
    }

    impl CountProbe for Budget {
        fn should_stop(&self) -> bool {
            self.spent.load(Ordering::Relaxed) >= self.cells
        }
        fn charge(&self, cells: u64) -> bool {
            self.spent.fetch_add(cells, Ordering::Relaxed) + cells >= self.cells
        }
    }

    #[test]
    fn stopped_probe_interrupts_before_any_candidate() {
        struct Stopped;
        impl CountProbe for Stopped {
            fn should_stop(&self) -> bool {
                true
            }
            fn charge(&self, _cells: u64) -> bool {
                true
            }
        }
        let d = db();
        let mut c = FpTreeCounter::new(&d);
        let sets = vec![Itemset::from_ids([0, 1]), Itemset::from_ids([1, 2])];
        let err = c.minterm_counts_batch_guarded(&sets, &Stopped).unwrap_err();
        assert_eq!(err.tables_completed, 0);
        assert_eq!(c.stats().tables_built, 0);
    }

    #[test]
    fn budget_trip_keeps_completed_candidates_and_exact_stats() {
        let d = db();
        let sets = level();
        let mut c = FpTreeCounter::new(&d);
        let probe = Budget::new(8);
        let err = c.minterm_counts_batch_guarded(&sets, &probe).unwrap_err();
        assert!(err.tables_completed >= 1, "something must complete");
        assert!(
            err.tables_completed < sets.len() as u64,
            "an 8-cell budget cannot cover the level"
        );
        assert_eq!(c.stats().tables_built, err.tables_completed);
        assert_eq!(c.stats().cells_counted, err.cells_completed);
    }

    #[test]
    fn noprobe_guarded_matches_unguarded() {
        let d = db();
        let sets = level();
        let t = FpTree::build(&d);
        assert_eq!(
            t.minterm_counts_batch_guarded(&sets, &NoProbe).unwrap(),
            t.minterm_counts_batch(&sets)
        );
    }

    #[test]
    fn ladder_degrades_fptree_to_vertical_to_horizontal() {
        struct Arena(usize);
        impl CountProbe for Arena {
            fn should_stop(&self) -> bool {
                false
            }
            fn charge(&self, _cells: u64) -> bool {
                false
            }
            fn arena_budget_bytes(&self) -> Option<usize> {
                Some(self.0)
            }
        }
        let d = db();
        let sets = vec![Itemset::from_ids([0, 1, 2]), Itemset::from_ids([1, 2, 3])];
        let mut h = HorizontalCounter::new(&d);
        let expected = h.minterm_counts_batch(&sets);

        // Unlimited arena: stays on the tree.
        let mut c = FpTreeCounter::new(&d);
        assert_eq!(
            c.minterm_counts_batch_guarded(&sets, &NoProbe).unwrap(),
            expected
        );
        assert_eq!(c.rung(), DegradationRung::Parallel);
        assert_eq!(c.stats().degraded_batches, 0);

        // A budget too small for the projections but big enough for one
        // vertical arena drops exactly one rung, and builds the twin.
        let proj = c.tree().projection_bytes(&sets) as usize;
        let vertical = VerticalIndex::scratch_bytes(d.len(), 1);
        assert!(proj > 0 && vertical > 0);
        assert!(
            vertical < proj,
            "fixture must leave room for the middle rung: vertical {vertical} >= proj {proj}"
        );
        let mut c = FpTreeCounter::new(&d);
        let got = c
            .minterm_counts_batch_guarded(&sets, &Arena(proj - 1))
            .unwrap();
        assert_eq!(got, expected);
        assert_eq!(c.rung(), DegradationRung::Vertical);
        assert_eq!(c.stats().degraded_batches, 1);
        assert_eq!(c.stats().db_scans, 3, "vertical twin adds a scan");

        // A 1-byte budget falls through to horizontal and stays there.
        let mut c = FpTreeCounter::new(&d);
        let got = c.minterm_counts_batch_guarded(&sets, &Arena(1)).unwrap();
        assert_eq!(got, expected);
        assert_eq!(c.rung(), DegradationRung::Horizontal);
        assert_eq!(c.stats().degraded_batches, 1);
        let got = c.minterm_counts_batch_guarded(&sets, &Arena(1)).unwrap();
        assert_eq!(got, expected);
        assert_eq!(c.stats().degraded_batches, 2, "degradation is sticky");
    }

    #[test]
    fn empty_inputs_answer_trivially() {
        let empty = TransactionDb::from_ids(3, Vec::<Vec<u32>>::new());
        let t = FpTree::build(&empty);
        assert_eq!(t.minterm_counts(&Itemset::empty()), vec![0]);
        assert_eq!(t.minterm_counts(&Itemset::from_ids([1])), vec![0, 0]);
        let mut c = FpTreeCounter::new(&empty);
        assert!(c.minterm_counts_batch(&[]).is_empty());
    }

    #[test]
    fn projection_bytes_count_distinct_nontrivial_items_once() {
        let d = db();
        let t = FpTree::build(&d);
        let pairs = vec![Itemset::from_ids([0, 1]), Itemset::from_ids([0, 2])];
        let trivial = vec![Itemset::from_ids([0]), Itemset::empty()];
        assert_eq!(t.projection_bytes(&trivial), 0);
        let both = t.projection_bytes(&pairs);
        let single = t.projection_bytes(&pairs[..1]);
        assert!(both > single, "item 2's projection must add bytes");
        let repeated = vec![
            Itemset::from_ids([0, 1]),
            Itemset::from_ids([0, 1]),
            Itemset::from_ids([0, 1]),
        ];
        assert_eq!(
            t.projection_bytes(&repeated),
            t.projection_bytes(&repeated[..1]),
            "memoized projections are charged once"
        );
    }
}
