//! # ccs-itemset — itemset kernel for constrained correlation mining
//!
//! The substrate every miner in this workspace stands on:
//!
//! * [`Item`] / [`Itemset`] — dense item ids and immutable sorted itemsets
//!   with full set algebra and lattice helpers,
//! * [`TransactionDb`] — an in-memory horizontal basket database,
//! * [`TidSet`] / [`VerticalIndex`] — per-item transaction bitmaps,
//! * [`counting`] — pluggable minterm (contingency-cell) counting with work
//!   accounting, in both paper-faithful horizontal-scan and fast vertical
//!   flavours,
//! * [`pool`] — a persistent, dependency-free work-stealing worker pool,
//! * [`parallel`] — a data-parallel horizontal counter on the pool,
//! * [`vertical_par`] — vertical batch counting fanned out over
//!   prefix-equivalence classes on the pool, with a memory-pressure
//!   degradation ladder,
//! * [`sharded`] — vertical batch counting over horizontally sharded
//!   tid ranges: per-shard cores and arenas, per-shard contingency
//!   tables merged elementwise into exact whole-database tables,
//! * [`fptree`] — pattern-growth counting over a compressed prefix
//!   tree: conditional projections memoized per batch, for dense
//!   low-cardinality databases where tid-set intersection pays per
//!   transaction instead of per distinct profile,
//! * [`candidate`] — Apriori-style level-wise candidate generation,
//!   including the asymmetric extension generator required by the
//!   constraint-pushing algorithms BMS++ / BMS**.

#![warn(missing_docs)]

pub mod candidate;
pub mod counting;
pub mod database;
pub mod fptree;
pub mod item;
pub mod itemset;
pub mod parallel;
pub mod pool;
pub mod sharded;
pub mod tidset;
pub mod vertical;
pub mod vertical_par;

pub use counting::{
    BatchInterrupted, CountProbe, CountingStats, HorizontalCounter, MintermCounter, NoProbe,
    VerticalCounter,
};
pub use database::TransactionDb;
pub use fptree::{FpTree, FpTreeCounter};
pub use item::Item;
pub use itemset::Itemset;
pub use parallel::ParallelCounter;
pub use pool::WorkerPool;
pub use sharded::{ShardedVerticalCounter, ShardedVerticalIndex};
pub use tidset::TidSet;
pub use vertical::VerticalIndex;
pub use vertical_par::{DegradationRung, ParallelVerticalCounter, ParallelVerticalIndex};
