//! Level-wise candidate generation for Apriori-style lattice sweeps.
//!
//! Algorithm BMS and its constrained variants walk the itemset lattice
//! bottom-up. Each level's candidates are derived from the previous level's
//! surviving sets. Two generators are provided:
//!
//! * [`apriori_gen`] — the classical `F_{k-1} ⋈ F_{k-1}` join followed by
//!   the all-subsets prune. Correct when *every* `(k-1)`-subset of a
//!   candidate is required to be in the previous level (Algorithm BMS,
//!   BMS*).
//! * [`extend_gen`] — extension of each previous-level set by one item from
//!   a given universe, deduplicated, followed by an arbitrary predicate.
//!   Needed by BMS++/BMS**, whose candidate rule only constrains the
//!   `(k-1)`-subsets that intersect `L1⁺` — a candidate may legitimately
//!   have subsets that were never candidates themselves, which breaks the
//!   symmetric join.

use std::collections::HashSet;

use crate::item::Item;
use crate::itemset::Itemset;

/// Joins pairs of `k-1`-sets sharing their first `k-2` items, producing
/// `k`-sets, then retains those for which `keep` returns `true`.
///
/// `prev` must contain sets of a single uniform size ≥ 1.
pub fn apriori_join<F>(prev: &HashSet<Itemset>, keep: F) -> Vec<Itemset>
where
    F: Fn(&Itemset) -> bool,
{
    let mut sorted: Vec<&Itemset> = prev.iter().collect();
    sorted.sort_unstable();
    let mut out = Vec::new();
    for (i, a) in sorted.iter().enumerate() {
        let k1 = a.len();
        debug_assert!(k1 >= 1);
        for b in &sorted[i + 1..] {
            debug_assert_eq!(b.len(), k1, "apriori_join requires a uniform level");
            if a.prefix(k1 - 1) != b.prefix(k1 - 1) {
                break; // sorted order: once prefixes diverge they stay diverged
            }
            let joined = a.union(b);
            debug_assert_eq!(joined.len(), k1 + 1);
            if keep(&joined) {
                out.push(joined);
            }
        }
    }
    out
}

/// Classical Apriori candidate generation: join + "all `(k-1)`-subsets
/// present" prune.
pub fn apriori_gen(prev: &HashSet<Itemset>) -> Vec<Itemset> {
    apriori_join(prev, |cand| {
        cand.subsets_dropping_one().all(|s| prev.contains(&s))
    })
}

/// Extends every set in `prev` by one item drawn from `universe`,
/// deduplicates, and retains candidates for which `keep` returns `true`.
///
/// Results are returned in sorted order for determinism.
pub fn extend_gen<F>(prev: &HashSet<Itemset>, universe: &[Item], keep: F) -> Vec<Itemset>
where
    F: Fn(&Itemset) -> bool,
{
    let mut seen: HashSet<Itemset> = HashSet::new();
    for base in prev {
        for &item in universe {
            if base.contains(item) {
                continue;
            }
            let cand = base.with_item(item);
            if seen.contains(&cand) {
                continue;
            }
            if keep(&cand) {
                seen.insert(cand);
            }
        }
    }
    let mut out: Vec<Itemset> = seen.into_iter().collect();
    out.sort_unstable();
    out
}

/// All unordered pairs `{a, b}` with `a ∈ left`, `b ∈ left ∪ right`,
/// `a ≠ b` — the `CAND₂` rule of BMS++ (`i₁ ∈ L1⁺`, `i₂ ∈ L1⁺ ∪ L1⁻`).
///
/// Results are sorted and duplicate-free.
pub fn pairs_from(left: &[Item], right: &[Item]) -> Vec<Itemset> {
    let mut seen: HashSet<Itemset> = HashSet::new();
    for &a in left {
        for &b in left.iter().chain(right.iter()) {
            if a != b {
                seen.insert(Itemset::from_items([a, b]));
            }
        }
    }
    let mut out: Vec<Itemset> = seen.into_iter().collect();
    out.sort_unstable();
    out
}

/// All unordered pairs over a single item slice.
pub fn all_pairs(items: &[Item]) -> Vec<Itemset> {
    let mut out = Vec::with_capacity(items.len() * items.len().saturating_sub(1) / 2);
    for (i, &a) in items.iter().enumerate() {
        for &b in &items[i + 1..] {
            out.push(Itemset::from_items([a, b]));
        }
    }
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(ids: &[u32]) -> Itemset {
        Itemset::from_ids(ids.iter().copied())
    }

    fn level(sets: &[&[u32]]) -> HashSet<Itemset> {
        sets.iter().map(|s| set(s)).collect()
    }

    #[test]
    fn apriori_gen_classic_example() {
        // L3 = {123, 124, 134, 135, 234}; join gives 1234 (kept: all subsets
        // present) and 1345 (pruned: 145 missing).
        let prev = level(&[&[1, 2, 3], &[1, 2, 4], &[1, 3, 4], &[1, 3, 5], &[2, 3, 4]]);
        let cands = apriori_gen(&prev);
        assert_eq!(cands, vec![set(&[1, 2, 3, 4])]);
    }

    #[test]
    fn apriori_join_without_prune_keeps_both() {
        let prev = level(&[&[1, 2, 3], &[1, 2, 4], &[1, 3, 4], &[1, 3, 5], &[2, 3, 4]]);
        let mut cands = apriori_join(&prev, |_| true);
        cands.sort_unstable();
        assert_eq!(cands, vec![set(&[1, 2, 3, 4]), set(&[1, 3, 4, 5])]);
    }

    #[test]
    fn apriori_gen_from_singletons() {
        let prev = level(&[&[1], &[2], &[3]]);
        let cands = apriori_gen(&prev);
        assert_eq!(cands, vec![set(&[1, 2]), set(&[1, 3]), set(&[2, 3])]);
    }

    #[test]
    fn apriori_gen_empty_level() {
        assert!(apriori_gen(&HashSet::new()).is_empty());
    }

    #[test]
    fn extend_gen_reaches_asymmetric_candidates() {
        // prev = {12}; universe = {3}. Candidate 123 must be generated even
        // though neither 13 nor 23 is in prev.
        let prev = level(&[&[1, 2]]);
        let cands = extend_gen(&prev, &[Item(3)], |_| true);
        assert_eq!(cands, vec![set(&[1, 2, 3])]);
    }

    #[test]
    fn extend_gen_dedups_and_filters() {
        let prev = level(&[&[1, 2], &[1, 3]]);
        // Both bases can produce {1,2,3}; it must appear once.
        let cands = extend_gen(&prev, &[Item(2), Item(3), Item(4)], |_| true);
        assert_eq!(
            cands,
            vec![set(&[1, 2, 3]), set(&[1, 2, 4]), set(&[1, 3, 4])]
        );
        let none = extend_gen(&prev, &[Item(4)], |c| !c.contains(Item(4)));
        assert!(none.is_empty());
    }

    #[test]
    fn pairs_from_is_left_anchored() {
        let left = [Item(1)];
        let right = [Item(2), Item(3)];
        let pairs = pairs_from(&left, &right);
        assert_eq!(pairs, vec![set(&[1, 2]), set(&[1, 3])]);
        // {2,3} must NOT appear: neither endpoint is in `left`.
    }

    #[test]
    fn pairs_from_both_sides_in_left() {
        let left = [Item(1), Item(2)];
        let pairs = pairs_from(&left, &[]);
        assert_eq!(pairs, vec![set(&[1, 2])]);
    }

    #[test]
    fn all_pairs_counts() {
        let items: Vec<Item> = (0..5).map(Item::new).collect();
        assert_eq!(all_pairs(&items).len(), 10);
        assert!(all_pairs(&items[..1]).is_empty());
    }
}
