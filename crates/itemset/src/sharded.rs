//! [`ShardedVerticalIndex`]: vertical minterm counting over a
//! horizontally sharded transaction database.
//!
//! Where [`crate::vertical_par::ParallelVerticalIndex`] parallelises
//! *across prefix classes* (each worker counts whole classes against the
//! full-range core), this engine parallelises *across the tid range*:
//! the database's transactions are split into `S` contiguous, disjoint
//! shards, each shard gets its own [`VerticalCore`] whose bitmaps cover
//! only its slice (`capacity = shard length`, tids rebased to the shard
//! start), and every prefix class is counted once per shard. Because a
//! transaction lives in exactly one shard, the elementwise sum of the
//! per-shard contingency tables equals the whole-database table —
//! bit-identically, cell by cell (`kernel_equivalence` and the sharded
//! proptests pin this for 1/2/3/7 shards).
//!
//! Sharding is the substrate the ROADMAP's multi-host fan-out needs: a
//! shard's core + scratch arena is self-contained, so a "worker" can as
//! easily be a remote host as a pool thread. On one box it also keeps
//! each worker's bitmap slice `1/S`-th the size — per-shard arenas sum
//! to roughly *one* full arena instead of the `workers ×` multiple the
//! class-parallel engine needs.
//!
//! # Interruption protocol
//!
//! Identical contract to the class-parallel engine, with shard-aware
//! accounting. Workers never see the [`CountProbe`]; the submitting
//! thread owns it. Each pool job owns one shard and streams
//! `(shard, class, partial tables)` back over a channel; the submitting
//! thread merges partials and considers a class *complete* only when all
//! `S` shards have delivered it. Completed classes are scattered into
//! the results, recorded, and charged (first trip wins — on a trip the
//! stop flag is raised, workers finish the class in hand and drain).
//! Classes with only some shards delivered when the batch ends are
//! discarded wholesale — a partially merged table never escapes, so a
//! `Truncated` result and its `ResumeState` stay exact.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

use crate::counting::{
    horizontal_batch_guarded, BatchInterrupted, CountProbe, CountingStats, MintermCounter, NoProbe,
};
use crate::database::TransactionDb;
use crate::item::Item;
use crate::itemset::Itemset;
use crate::pool::WorkerPool;
use crate::tidset::TidSet;
use crate::vertical::{
    alloc_results, answer_trivial, group_classes, OwnedClass, VerticalCore, VerticalIndex,
};
use crate::vertical_par::{DegradationRung, POOL_WORK_FLOOR};

/// How long the submitting thread waits for worker results between
/// probe polls when the probe is armed.
const PROBE_POLL: Duration = Duration::from_millis(1);

/// A vertical index split into contiguous, disjoint tid-range shards,
/// each with its own core and scratch arena.
#[derive(Debug)]
pub struct ShardedVerticalIndex {
    cores: Vec<Arc<VerticalCore>>,
    /// `bounds[i]` is shard `i`'s `(start, end)` tid range.
    bounds: Vec<(usize, usize)>,
    n_transactions: usize,
    n_items: usize,
    /// Whole-database per-item supports (summed across shards), so
    /// trivial 0-/1-item candidates are answered without touching any
    /// single shard's bitmaps.
    item_supports: Vec<u64>,
    pool: Arc<WorkerPool>,
    /// One arena per shard for the sequential path (shards have
    /// different bitmap capacities, so arenas cannot be shared). Pool
    /// jobs own their arenas per batch.
    scratch: Vec<Vec<TidSet>>,
    item_counts: Vec<usize>,
    work_floor: u64,
}

/// Splits `n` transactions into `shards` contiguous ranges differing in
/// length by at most one. Requested shard counts are clamped to
/// `1..=max(n, 1)` — more shards than transactions would only mint
/// empty cores.
fn shard_bounds(n: usize, shards: usize) -> Vec<(usize, usize)> {
    let s = shards.clamp(1, n.max(1));
    (0..s).map(|i| (i * n / s, (i + 1) * n / s)).collect()
}

impl ShardedVerticalIndex {
    /// Builds on the process-wide pool with one shard per pool worker.
    pub fn build(db: &TransactionDb) -> Self {
        let pool = Arc::clone(WorkerPool::global());
        let shards = pool.n_workers();
        Self::with_pool(db, shards, pool)
    }

    /// Builds with an explicit shard count on the process-wide pool.
    pub fn build_with_shards(db: &TransactionDb, shards: usize) -> Self {
        Self::with_pool(db, shards, Arc::clone(WorkerPool::global()))
    }

    /// Builds with an explicit shard count on a private pool of
    /// `n_workers` threads.
    pub fn build_with_shards_and_workers(
        db: &TransactionDb,
        shards: usize,
        n_workers: usize,
    ) -> Self {
        Self::with_pool(db, shards, Arc::new(WorkerPool::new(n_workers)))
    }

    /// Builds `shards` range cores (one database pass in total) on an
    /// existing pool.
    pub fn with_pool(db: &TransactionDb, shards: usize, pool: Arc<WorkerPool>) -> Self {
        let bounds = shard_bounds(db.len(), shards);
        let cores: Vec<Arc<VerticalCore>> = bounds
            .iter()
            .map(|&(start, end)| Arc::new(VerticalCore::build_range(db, start, end)))
            .collect();
        let n_items = db.n_items() as usize;
        let item_supports = (0..n_items)
            .map(|i| {
                cores
                    .iter()
                    .map(|c| c.tidset(Item::new(i as u32)).count() as u64)
                    .sum()
            })
            .collect();
        let scratch = cores.iter().map(|_| Vec::new()).collect();
        ShardedVerticalIndex {
            cores,
            bounds,
            n_transactions: db.len(),
            n_items,
            item_supports,
            pool,
            scratch,
            item_counts: Vec::new(),
            work_floor: POOL_WORK_FLOOR,
        }
    }

    /// Number of tid-range shards.
    pub fn n_shards(&self) -> usize {
        self.cores.len()
    }

    /// Number of pool workers available to a batch.
    pub fn n_workers(&self) -> usize {
        self.pool.n_workers()
    }

    /// Shard `i`'s `(start, end)` tid range.
    pub fn shard_bounds(&self, i: usize) -> (usize, usize) {
        self.bounds[i]
    }

    /// Number of transactions in the indexed database (all shards).
    #[inline]
    pub fn n_transactions(&self) -> usize {
        self.n_transactions
    }

    /// Number of items in the universe.
    #[inline]
    pub fn n_items(&self) -> usize {
        self.n_items
    }

    /// Absolute support of an itemset: the sum of its per-shard supports
    /// (each shard intersects only its own slice of the tid range).
    pub fn support(&self, set: &Itemset) -> usize {
        self.cores.iter().map(|c| c.support(set)).sum()
    }

    /// The total scratch-arena footprint of the sharded engine for
    /// `depths` recursion levels: the sum of the per-shard arenas. The
    /// shards partition the tid range, so this is roughly *one*
    /// full-range arena (plus per-shard superblock padding), not the
    /// `workers ×` multiple of the class-parallel engine.
    pub fn scratch_bytes(&self, depths: usize) -> usize {
        self.bounds
            .iter()
            .map(|&(start, end)| VerticalIndex::scratch_bytes(end - start, depths))
            .sum()
    }

    /// Overrides the sequential-fallback work floor. Tests and
    /// benchmarks set `0` to force pool dispatch on small batches (the
    /// default floor would — correctly — route them sequentially).
    pub fn set_work_floor(&mut self, floor: u64) {
        self.work_floor = floor;
    }

    /// Counts one set; see [`VerticalIndex::minterm_counts`] for cell
    /// indexing.
    pub fn minterm_counts(&mut self, set: &Itemset) -> Vec<u64> {
        match self.minterm_counts_batch_guarded(std::slice::from_ref(set), &NoProbe) {
            Ok(mut results) => results.swap_remove(0),
            Err(_) => unreachable!("NoProbe never interrupts"),
        }
    }

    /// Batch minterm counting across shards. Results are bit-identical
    /// to [`VerticalIndex::minterm_counts_batch`] in input order.
    pub fn minterm_counts_batch(&mut self, sets: &[Itemset]) -> Vec<Vec<u64>> {
        match self.minterm_counts_batch_guarded(sets, &NoProbe) {
            Ok(results) => results,
            Err(_) => unreachable!("NoProbe never interrupts"),
        }
    }

    /// Guarded batch counting; see the module docs for the interruption
    /// protocol. A class counts as completed only once every shard's
    /// partial table has been merged; partially merged classes never
    /// escape.
    pub fn minterm_counts_batch_guarded(
        &mut self,
        sets: &[Itemset],
        probe: &dyn CountProbe,
    ) -> Result<Vec<Vec<u64>>, BatchInterrupted> {
        let mut results = alloc_results(sets);
        let mut done = BatchInterrupted::default();
        let (trivial, plan) = group_classes(sets);
        for t in &trivial {
            let support = t.item.map_or(0, |a| self.item_supports[a.index()]);
            answer_trivial(
                t,
                self.n_transactions as u64,
                support,
                &mut results,
                &mut done,
            );
        }
        if done.cells_completed > 0
            && probe.charge(done.cells_completed)
            && !plan.classes.is_empty()
        {
            return Err(done);
        }
        if plan.classes.is_empty() {
            return Ok(results);
        }
        let estimated: u64 = plan
            .classes
            .iter()
            .map(|c| c.estimated_word_ops(self.n_transactions))
            .sum();
        let workers = self.pool.n_workers();
        let interrupted = if workers <= 1 || self.cores.len() < 2 || estimated < self.work_floor {
            self.run_classes_sequential(&plan.classes, probe, &mut results, &mut done)
        } else {
            self.run_classes_parallel(&plan.classes, probe, &mut results, &mut done)
        };
        if interrupted && done.tables_completed < sets.len() as u64 {
            Err(done)
        } else {
            Ok(results)
        }
    }

    /// Class-major sequential path: for each class, count every shard on
    /// the calling thread and merge; charge the probe once per class.
    fn run_classes_sequential(
        &mut self,
        classes: &[OwnedClass],
        probe: &dyn CountProbe,
        results: &mut [Vec<u64>],
        done: &mut BatchInterrupted,
    ) -> bool {
        let max_prefix = classes.iter().map(|c| c.prefix.len()).max().unwrap_or(0);
        for (core, scratch) in self.cores.iter().zip(self.scratch.iter_mut()) {
            core.ensure_scratch(scratch, max_prefix);
        }
        let mut acc: Vec<Vec<u64>> = Vec::new();
        let mut part: Vec<Vec<u64>> = Vec::new();
        for class in classes {
            if probe.should_stop() {
                return true;
            }
            // Accumulate directly into the members' (zeroed) result rows,
            // moved out to satisfy the borrow checker and moved back after.
            acc.clear();
            acc.extend(class.rows.iter().map(|&r| std::mem::take(&mut results[r])));
            for (core, scratch) in self.cores.iter().zip(self.scratch.iter_mut()) {
                part.clear();
                part.extend((0..class.members.len()).map(|_| vec![0u64; class.table_len()]));
                core.count_class(class, &mut self.item_counts, scratch, &mut part);
                for (a, p) in acc.iter_mut().zip(&part) {
                    for (cell, add) in a.iter_mut().zip(p) {
                        *cell += *add;
                    }
                }
            }
            for (local, &r) in acc.iter_mut().zip(&class.rows) {
                results[r] = std::mem::take(local);
            }
            done.tables_completed += class.members.len() as u64;
            done.cells_completed += class.cells();
            if probe.charge(class.cells()) {
                return true;
            }
        }
        false
    }

    /// Pool path: one job per shard, each walking *every* class against
    /// its own core with its own arena, streaming partial tables back.
    /// The submitting thread merges; a class completes when all shards
    /// delivered it. Returns `true` if the probe interrupted the batch.
    fn run_classes_parallel(
        &self,
        classes: &[OwnedClass],
        probe: &dyn CountProbe,
        results: &mut [Vec<u64>],
        done: &mut BatchInterrupted,
    ) -> bool {
        if probe.should_stop() {
            return true;
        }
        let n_classes = classes.len();
        let n_shards = self.cores.len();
        let classes = Arc::new(classes.to_vec());
        let stop = Arc::new(AtomicBool::new(false));
        let (tx, rx) = mpsc::channel::<(usize, Vec<Vec<u64>>)>();
        for core in &self.cores {
            let core = Arc::clone(core);
            let classes = Arc::clone(&classes);
            let stop = Arc::clone(&stop);
            let tx = tx.clone();
            self.pool.execute(move || {
                // Shard-local state, reused across every class of the
                // batch: one arena sized to this shard's slice, one flat
                // item-count buffer.
                let mut scratch: Vec<TidSet> = Vec::new();
                let mut item_counts: Vec<usize> = Vec::new();
                for (ci, class) in classes.iter().enumerate() {
                    if stop.load(Ordering::Acquire) {
                        break;
                    }
                    let mut out: Vec<Vec<u64>> = (0..class.members.len())
                        .map(|_| vec![0u64; class.table_len()])
                        .collect();
                    core.count_class(class, &mut item_counts, &mut scratch, &mut out);
                    if tx.send((ci, out)).is_err() {
                        break; // receiver gone: the batch is over
                    }
                }
            });
        }
        drop(tx);
        // Merge state per class: the accumulated tables and how many
        // shards have delivered.
        let mut acc: Vec<Option<Vec<Vec<u64>>>> = vec![None; n_classes];
        let mut delivered = vec![0usize; n_classes];
        let inert = probe.is_inert();
        let mut stopped = false;
        let mut completed = 0usize;
        loop {
            let msg = if inert {
                rx.recv().map_err(|_| ())
            } else {
                match rx.recv_timeout(PROBE_POLL) {
                    Ok(msg) => Ok(msg),
                    Err(mpsc::RecvTimeoutError::Timeout) => {
                        if !stopped && probe.should_stop() {
                            stopped = true;
                            stop.store(true, Ordering::Release);
                        }
                        continue;
                    }
                    Err(mpsc::RecvTimeoutError::Disconnected) => Err(()),
                }
            };
            let Ok((ci, part)) = msg else { break };
            match &mut acc[ci] {
                slot @ None => *slot = Some(part),
                Some(tables) => {
                    for (table, p) in tables.iter_mut().zip(&part) {
                        for (cell, add) in table.iter_mut().zip(p) {
                            *cell += *add;
                        }
                    }
                }
            }
            delivered[ci] += 1;
            if delivered[ci] < n_shards {
                continue;
            }
            // All shards in: the class is complete. Scatter and charge.
            let class = &classes[ci];
            // Every shard delivered, so the slot is occupied.
            #[allow(clippy::expect_used)]
            let tables = acc[ci].take().expect("merged class lost its tables");
            for (local, &row) in tables.into_iter().zip(&class.rows) {
                results[row] = local;
            }
            done.tables_completed += class.members.len() as u64;
            done.cells_completed += class.cells();
            // First trip wins: classes still draining out of the workers
            // may yet complete (they are sound and are kept), but no new
            // class starts on any shard.
            if probe.charge(class.cells()) && !stopped {
                stopped = true;
                stop.store(true, Ordering::Release);
            }
            completed += 1;
        }
        assert!(
            stopped || completed == n_classes,
            "sharded vertical counting lost {} classes (worker died outside \
             the interruption protocol — counting kernel bug)",
            n_classes - completed
        );
        stopped
    }
}

/// Tid-set counter over a horizontally sharded database, with the same
/// three-rung memory-pressure degradation ladder as
/// [`crate::vertical_par::ParallelVerticalCounter`]:
///
/// * [`DegradationRung::Parallel`] — sharded counting (the preferred
///   rung); needs the *sum* of the per-shard arenas, roughly one
///   full-range arena;
/// * [`DegradationRung::Vertical`] — single full-range vertical index,
///   built lazily on first degradation (one extra database scan,
///   recorded in [`CountingStats::db_scans`]);
/// * [`DegradationRung::Horizontal`] — guarded horizontal scans, no
///   arena at all.
///
/// Degradation is sticky and downward-only; any batch answered below
/// the top rung increments [`CountingStats::degraded_batches`]. All
/// per-batch stats merge through `CountingStats`'s `AddAssign` — the
/// single merge path shared by every counter.
#[derive(Debug)]
pub struct ShardedVerticalCounter<'a> {
    db: &'a TransactionDb,
    index: ShardedVerticalIndex,
    /// Full-range twin for the `Vertical` rung, built only if the ladder
    /// ever drops there.
    seq: Option<VerticalIndex>,
    stats: CountingStats,
    rung: DegradationRung,
}

impl<'a> ShardedVerticalCounter<'a> {
    /// Builds with one shard per worker of the process-wide pool.
    pub fn new(db: &'a TransactionDb) -> Self {
        Self::from_index(db, ShardedVerticalIndex::build(db))
    }

    /// Builds with an explicit shard count on the process-wide pool.
    pub fn with_shards(db: &'a TransactionDb, shards: usize) -> Self {
        Self::from_index(db, ShardedVerticalIndex::build_with_shards(db, shards))
    }

    /// Builds with explicit shard and private-pool worker counts.
    pub fn with_shards_and_workers(db: &'a TransactionDb, shards: usize, workers: usize) -> Self {
        Self::from_index(
            db,
            ShardedVerticalIndex::build_with_shards_and_workers(db, shards, workers),
        )
    }

    fn from_index(db: &'a TransactionDb, index: ShardedVerticalIndex) -> Self {
        ShardedVerticalCounter {
            db,
            index,
            seq: None,
            stats: CountingStats {
                db_scans: 1,
                ..CountingStats::default()
            },
            rung: DegradationRung::Parallel,
        }
    }

    /// Direct access to the underlying sharded index.
    pub fn index(&self) -> &ShardedVerticalIndex {
        &self.index
    }

    /// Mutable access (e.g. [`ShardedVerticalIndex::set_work_floor`]).
    pub fn index_mut(&mut self) -> &mut ShardedVerticalIndex {
        &mut self.index
    }

    /// The ladder rung the next batch will be answered from
    /// (`Parallel` denotes the sharded rung).
    pub fn rung(&self) -> DegradationRung {
        self.rung
    }

    /// Applies the (sticky, downward-only) degradation ladder for a
    /// batch needing `depths` scratch recursion levels.
    fn apply_ladder(&mut self, probe: &dyn CountProbe, depths: usize) {
        let Some(budget) = probe.arena_budget_bytes() else {
            return;
        };
        if self.rung == DegradationRung::Parallel && self.index.scratch_bytes(depths) > budget {
            self.rung = DegradationRung::Vertical;
        }
        if self.rung == DegradationRung::Vertical
            && VerticalIndex::scratch_bytes(self.index.n_transactions(), depths) > budget
        {
            self.rung = DegradationRung::Horizontal;
        }
    }

    /// The full-range index for the `Vertical` rung, built on first use
    /// (one extra database scan, recorded in the stats).
    fn seq_index(&mut self) -> &mut VerticalIndex {
        if self.seq.is_none() {
            self.seq = Some(VerticalIndex::build(self.db));
            self.stats.db_scans += 1;
        }
        // Just installed above if absent.
        #[allow(clippy::expect_used)]
        self.seq.as_mut().expect("sequential twin just built")
    }
}

impl MintermCounter for ShardedVerticalCounter<'_> {
    fn minterm_counts(&mut self, set: &Itemset) -> Vec<u64> {
        self.stats += CountingStats::tables(1, 1u64 << set.len());
        self.index.minterm_counts(set)
    }

    fn minterm_counts_batch(&mut self, sets: &[Itemset]) -> Vec<Vec<u64>> {
        match self.minterm_counts_batch_guarded(sets, &NoProbe) {
            Ok(tables) => tables,
            Err(_) => unreachable!("NoProbe never interrupts"),
        }
    }

    fn minterm_counts_batch_guarded(
        &mut self,
        sets: &[Itemset],
        probe: &dyn CountProbe,
    ) -> Result<Vec<Vec<u64>>, BatchInterrupted> {
        if sets.is_empty() {
            return Ok(Vec::new());
        }
        let depths = sets
            .iter()
            .map(|s| s.len().saturating_sub(2))
            .max()
            .unwrap_or(0);
        self.apply_ladder(probe, depths);
        let outcome = match self.rung {
            DegradationRung::Parallel => self.index.minterm_counts_batch_guarded(sets, probe),
            DegradationRung::Vertical => {
                self.stats.degraded_batches += 1;
                self.seq_index().minterm_counts_batch_guarded(sets, probe)
            }
            DegradationRung::Horizontal => {
                self.stats.degraded_batches += 1;
                return horizontal_batch_guarded(self.db, sets, probe, &mut self.stats);
            }
        };
        match outcome {
            Ok(tables) => {
                self.stats += CountingStats::tables(
                    sets.len() as u64,
                    sets.iter().map(|s| 1u64 << s.len()).sum::<u64>(),
                );
                Ok(tables)
            }
            Err(partial) => {
                self.stats +=
                    CountingStats::tables(partial.tables_completed, partial.cells_completed);
                Err(partial)
            }
        }
    }

    fn n_transactions(&self) -> usize {
        self.index.n_transactions()
    }

    fn stats(&self) -> CountingStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counting::HorizontalCounter;

    fn db(n: usize) -> TransactionDb {
        TransactionDb::from_ids(
            8,
            (0..n).map(|i| {
                let mut t = Vec::new();
                if i % 2 == 0 {
                    t.extend([0, 1]);
                }
                if i % 3 == 0 {
                    t.push(2);
                }
                if i % 5 == 0 {
                    t.extend([3, 4]);
                }
                if i % 7 == 0 {
                    t.extend([5, 6, 7]);
                }
                t
            }),
        )
    }

    fn level() -> Vec<Itemset> {
        vec![
            Itemset::from_ids([0, 1]),
            Itemset::from_ids([0, 2]),
            Itemset::from_ids([0, 1, 2]),
            Itemset::from_ids([0, 1, 3]),
            Itemset::from_ids([2, 3, 4]),
            Itemset::from_ids([0, 1, 2, 3]),
            Itemset::from_ids([3, 4, 5, 6]),
            Itemset::from_ids([5]),
            Itemset::empty(),
        ]
    }

    #[test]
    fn shard_bounds_partition_the_range() {
        for (n, s) in [(10, 3), (7, 7), (100, 1), (5, 9), (0, 4), (64, 2)] {
            let b = shard_bounds(n, s);
            assert_eq!(b.first().map(|&(lo, _)| lo), Some(0));
            assert_eq!(b.last().map(|&(_, hi)| hi), Some(n));
            for w in b.windows(2) {
                assert_eq!(w[0].1, w[1].0, "ranges must be contiguous");
                assert!(w[0].1 > w[0].0 || n == 0, "no empty shard for n={n} s={s}");
            }
        }
    }

    #[test]
    fn sharded_batch_matches_sequential_vertical_exactly() {
        let d = db(600);
        let sets = level();
        let mut seq = VerticalIndex::build(&d);
        let expected = seq.minterm_counts_batch(&sets);
        for shards in [1usize, 2, 3, 7] {
            for workers in [1usize, 2, 4] {
                let mut idx =
                    ShardedVerticalIndex::build_with_shards_and_workers(&d, shards, workers);
                idx.set_work_floor(0); // force pool dispatch
                assert_eq!(
                    idx.minterm_counts_batch(&sets),
                    expected,
                    "shards={shards} workers={workers}"
                );
            }
        }
    }

    #[test]
    fn sharded_supports_match_full_range() {
        let d = db(313);
        let idx = ShardedVerticalIndex::build_with_shards_and_workers(&d, 3, 2);
        let v = VerticalIndex::build(&d);
        for set in level() {
            assert_eq!(idx.support(&set), v.support(&set), "{set}");
        }
    }

    #[test]
    fn counter_matches_horizontal_counter() {
        let d = db(400);
        let sets = level();
        let mut h = HorizontalCounter::new(&d);
        let expected = h.minterm_counts_batch(&sets);
        let mut c = ShardedVerticalCounter::with_shards_and_workers(&d, 3, 2);
        c.index_mut().set_work_floor(0);
        assert_eq!(c.minterm_counts_batch(&sets), expected);
        assert_eq!(c.stats().tables_built, sets.len() as u64);
        assert_eq!(c.stats().db_scans, 1, "the sharded build is one scan");
        for set in &sets {
            assert_eq!(c.minterm_counts(set), h.minterm_counts(set), "{set}");
        }
    }

    #[test]
    fn stopped_probe_interrupts_before_any_class() {
        struct Stopped;
        impl CountProbe for Stopped {
            fn should_stop(&self) -> bool {
                true
            }
            fn charge(&self, _cells: u64) -> bool {
                true
            }
        }
        let d = db(500);
        let sets = vec![Itemset::from_ids([0, 1, 2]), Itemset::from_ids([3, 4, 5])];
        let mut idx = ShardedVerticalIndex::build_with_shards_and_workers(&d, 2, 2);
        idx.set_work_floor(0);
        let err = idx
            .minterm_counts_batch_guarded(&sets, &Stopped)
            .unwrap_err();
        assert_eq!(err.tables_completed, 0);
    }

    #[test]
    fn ladder_degrades_sharded_to_vertical_to_horizontal() {
        struct Arena(usize);
        impl CountProbe for Arena {
            fn should_stop(&self) -> bool {
                false
            }
            fn charge(&self, _cells: u64) -> bool {
                false
            }
            fn arena_budget_bytes(&self) -> Option<usize> {
                Some(self.0)
            }
        }
        let d = db(1000);
        let triples = vec![Itemset::from_ids([0, 1, 2]), Itemset::from_ids([3, 4, 5])];
        let mut h = HorizontalCounter::new(&d);
        let expected = h.minterm_counts_batch(&triples);

        let mut c = ShardedVerticalCounter::with_shards_and_workers(&d, 3, 2);
        c.index_mut().set_work_floor(0);
        assert_eq!(c.rung(), DegradationRung::Parallel);
        // Per-shard padding makes the sharded sum strictly larger than
        // one full-range arena here (3 shards of ~334 pad to 1 superblock
        // each vs 2 superblocks full-range), so a budget of exactly one
        // full-range arena drops to Vertical but stays off Horizontal.
        let full = VerticalIndex::scratch_bytes(d.len(), 1);
        assert!(c.index().scratch_bytes(1) > full);
        let got = c
            .minterm_counts_batch_guarded(&triples, &Arena(full))
            .unwrap();
        assert_eq!(got, expected);
        assert_eq!(c.rung(), DegradationRung::Vertical);
        assert_eq!(c.stats().degraded_batches, 1);
        assert_eq!(
            c.stats().db_scans,
            2,
            "the lazy full-range twin is a second scan"
        );

        // Budget fits no arena at all: drop to Horizontal, stay there.
        let got = c.minterm_counts_batch_guarded(&triples, &Arena(1)).unwrap();
        assert_eq!(got, expected);
        assert_eq!(c.rung(), DegradationRung::Horizontal);
        assert_eq!(c.stats().degraded_batches, 2);

        // Degradation is sticky even with a generous later budget.
        let got = c
            .minterm_counts_batch_guarded(&triples, &Arena(usize::MAX))
            .unwrap();
        assert_eq!(got, expected);
        assert_eq!(c.rung(), DegradationRung::Horizontal);
        assert_eq!(c.stats().degraded_batches, 3);
    }

    #[test]
    fn budget_trip_keeps_completed_classes_and_reports_exact_stats() {
        use std::sync::atomic::AtomicU64;
        /// Trips once `budget` cells have been charged.
        struct Budget {
            budget: u64,
            spent: AtomicU64,
        }
        impl CountProbe for Budget {
            fn should_stop(&self) -> bool {
                self.spent.load(Ordering::Relaxed) >= self.budget
            }
            fn charge(&self, cells: u64) -> bool {
                self.spent.fetch_add(cells, Ordering::Relaxed) + cells >= self.budget
            }
        }
        let d = db(500);
        let sets: Vec<Itemset> = (0..6)
            .map(|i| Itemset::from_ids([i, i + 1, i + 2]))
            .collect();
        let mut c = ShardedVerticalCounter::with_shards_and_workers(&d, 3, 2);
        c.index_mut().set_work_floor(0);
        let probe = Budget {
            budget: 9,
            spent: AtomicU64::new(0),
        };
        // The trip races the drain: workers may legitimately finish every
        // class before the stop flag lands, in which case the batch
        // completed and `Ok` is the correct answer. Both outcomes must
        // keep the stats exact.
        match c.minterm_counts_batch_guarded(&sets, &probe) {
            Err(err) => {
                assert!(err.tables_completed >= 1, "first class kept");
                assert!(err.tables_completed < sets.len() as u64, "batch truncated");
                assert_eq!(c.stats().tables_built, err.tables_completed);
                assert_eq!(c.stats().cells_counted, err.cells_completed);
            }
            Ok(tables) => {
                assert_eq!(tables.len(), sets.len());
                assert_eq!(c.stats().tables_built, sets.len() as u64);
            }
        }
        assert!(
            probe.spent.load(Ordering::Relaxed) >= probe.budget,
            "the budget did trip"
        );
    }

    #[test]
    fn empty_database_answers_trivially() {
        let d = TransactionDb::from_ids(3, Vec::<Vec<u32>>::new());
        let mut idx = ShardedVerticalIndex::build_with_shards_and_workers(&d, 4, 2);
        assert_eq!(idx.n_shards(), 1, "no empty shards are minted");
        let sets = vec![
            Itemset::empty(),
            Itemset::from_ids([0]),
            Itemset::from_ids([0, 1]),
        ];
        let got = idx.minterm_counts_batch(&sets);
        assert_eq!(got[0], vec![0]);
        assert_eq!(got[1], vec![0, 0]);
        assert_eq!(got[2], vec![0, 0, 0, 0]);
    }
}
