//! [`ParallelVerticalIndex`]: vertical minterm counting fanned out over
//! prefix-equivalence classes on a persistent [`WorkerPool`].
//!
//! Eclat-style vertical counting is embarrassingly parallel across
//! prefix classes: each class walks its own split tree and writes to
//! disjoint result rows. This engine plans a level batch exactly like
//! [`VerticalIndex`](crate::vertical::VerticalIndex) (same classes, same
//! kernel, same counts — the counting-equivalence property tests pin
//! this), then hands the classes to pool workers. Per worker:
//!
//! * one **depth-indexed scratch arena** plus one flat per-item count
//!   buffer, allocated lazily and reused across every class the worker
//!   pulls, so arena memory is `workers × scratch_bytes`, not
//!   `classes × scratch_bytes`;
//! * classes are pulled from a shared atomic cursor (cheap dynamic load
//!   balancing — class costs vary by `2^(k-2)`), counted into local
//!   rows, and streamed back over a channel.
//!
//! # Interruption protocol
//!
//! Workers never see the [`CountProbe`] — a probe is borrowed and jobs
//! are `'static`. Instead the submitting thread owns all probe
//! interaction: it charges each class as its results arrive and polls
//! `should_stop` while waiting. On a trip it raises a shared stop flag
//! (first trip wins); workers observe it before pulling another class,
//! finish the class in hand, and drain away. Every class that completes
//! — before or during the drain — is kept and recorded, so a
//! `Truncated` partial result and its `ResumeState` stay exact, matching
//! the sequential engines' contract.
//!
//! # Small batches
//!
//! Dispatch costs real work (job boxing, channel traffic, per-worker
//! arenas), so batches whose estimated bitmap traffic falls under a work
//! floor run sequentially on the calling thread — identical results,
//! none of the overhead.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

use crate::counting::{
    horizontal_batch_guarded, BatchInterrupted, CountProbe, CountingStats, MintermCounter, NoProbe,
};
use crate::database::TransactionDb;
use crate::itemset::Itemset;
use crate::pool::WorkerPool;
use crate::tidset::TidSet;
use crate::vertical::{
    alloc_results, plan_level, run_classes_sequential, OwnedClass, VerticalCore, VerticalIndex,
};

/// Minimum estimated 64-bit bitmap words a batch must touch before the
/// pool is engaged; smaller batches run sequentially on the caller.
/// `1 << 17` words ≈ 1 MiB of bitmap traffic — far above the cost of a
/// handful of job dispatches, far below one mining level on a database
/// large enough to benefit from threads.
pub const POOL_WORK_FLOOR: u64 = 1 << 17;

/// How long the submitting thread waits for worker results between
/// probe polls when the probe is armed.
const PROBE_POLL: Duration = Duration::from_millis(1);

/// A vertical index whose batch counting fans prefix-equivalence
/// classes out across a persistent worker pool.
#[derive(Debug)]
pub struct ParallelVerticalIndex {
    core: Arc<VerticalCore>,
    pool: Arc<WorkerPool>,
    /// Arena for the sequential fallback path (small batches, one-worker
    /// pools); pool workers own their arenas per batch.
    scratch: Vec<TidSet>,
    work_floor: u64,
}

impl ParallelVerticalIndex {
    /// Builds the index (one database pass) on the process-wide pool.
    pub fn build(db: &TransactionDb) -> Self {
        Self::with_pool(db, Arc::clone(WorkerPool::global()))
    }

    /// Builds the index on a private pool of `n_workers` threads.
    pub fn build_with_workers(db: &TransactionDb, n_workers: usize) -> Self {
        Self::with_pool(db, Arc::new(WorkerPool::new(n_workers)))
    }

    /// Builds the index on an existing pool.
    pub fn with_pool(db: &TransactionDb, pool: Arc<WorkerPool>) -> Self {
        ParallelVerticalIndex {
            core: Arc::new(VerticalCore::build(db)),
            pool,
            scratch: Vec::new(),
            work_floor: POOL_WORK_FLOOR,
        }
    }

    /// Shares the core of an existing sequential index (no rebuild).
    pub fn from_index(index: &VerticalIndex, pool: Arc<WorkerPool>) -> Self {
        ParallelVerticalIndex {
            core: Arc::clone(index.core()),
            pool,
            scratch: Vec::new(),
            work_floor: POOL_WORK_FLOOR,
        }
    }

    /// Number of pool workers available to a batch.
    pub fn n_workers(&self) -> usize {
        self.pool.n_workers()
    }

    /// Number of transactions in the indexed database.
    #[inline]
    pub fn n_transactions(&self) -> usize {
        self.core.n_transactions()
    }

    /// Number of items in the universe.
    #[inline]
    pub fn n_items(&self) -> usize {
        self.core.n_items()
    }

    /// Absolute support via tid-set intersection (sequential — a single
    /// set never benefits from the pool).
    pub fn support(&self, set: &Itemset) -> usize {
        self.core.support(set)
    }

    /// Overrides the sequential-fallback work floor. Tests and
    /// benchmarks set `0` to force pool dispatch on small batches (the
    /// default floor would — correctly — route them sequentially).
    pub fn set_work_floor(&mut self, floor: u64) {
        self.work_floor = floor;
    }

    /// Counts one set sequentially; see
    /// [`VerticalIndex::minterm_counts`] for cell indexing.
    pub fn minterm_counts(&mut self, set: &Itemset) -> Vec<u64> {
        match self.minterm_counts_batch_guarded(std::slice::from_ref(set), &NoProbe) {
            Ok(mut results) => results.swap_remove(0),
            Err(_) => unreachable!("NoProbe never interrupts"),
        }
    }

    /// Batch minterm counting, parallel across prefix classes. Results
    /// are identical to [`VerticalIndex::minterm_counts_batch`] in input
    /// order.
    pub fn minterm_counts_batch(&mut self, sets: &[Itemset]) -> Vec<Vec<u64>> {
        match self.minterm_counts_batch_guarded(sets, &NoProbe) {
            Ok(results) => results,
            Err(_) => unreachable!("NoProbe never interrupts"),
        }
    }

    /// Guarded batch counting; see the module docs for the interruption
    /// protocol. Completed classes (including those draining when the
    /// probe trips) are kept and recorded in the returned
    /// [`BatchInterrupted`]; partially-counted classes never escape.
    pub fn minterm_counts_batch_guarded(
        &mut self,
        sets: &[Itemset],
        probe: &dyn CountProbe,
    ) -> Result<Vec<Vec<u64>>, BatchInterrupted> {
        let mut results = alloc_results(sets);
        let mut done = BatchInterrupted::default();
        let plan = plan_level(&self.core, sets, &mut results, &mut done);
        if done.cells_completed > 0
            && probe.charge(done.cells_completed)
            && !plan.classes.is_empty()
        {
            return Err(done);
        }
        if plan.classes.is_empty() {
            return Ok(results);
        }
        let estimated: u64 = plan
            .classes
            .iter()
            .map(|c| c.estimated_word_ops(self.core.n_transactions()))
            .sum();
        let workers = self.pool.n_workers();
        if workers <= 1 || plan.classes.len() < 2 || estimated < self.work_floor {
            let interrupted = run_classes_sequential(
                &self.core,
                &plan.classes,
                probe,
                &mut self.scratch,
                &mut results,
                &mut done,
            );
            return finish(interrupted, done, results, sets.len());
        }
        let interrupted = self.run_classes_parallel(plan.classes, probe, &mut results, &mut done);
        finish(interrupted, done, results, sets.len())
    }

    /// Fans `classes` out over the pool; returns `true` if the probe
    /// interrupted the batch. See the module docs for the protocol.
    fn run_classes_parallel(
        &self,
        classes: Vec<OwnedClass>,
        probe: &dyn CountProbe,
        results: &mut [Vec<u64>],
        done: &mut BatchInterrupted,
    ) -> bool {
        if probe.should_stop() {
            return true;
        }
        let n_classes = classes.len();
        let classes = Arc::new(classes);
        let stop = Arc::new(AtomicBool::new(false));
        let cursor = Arc::new(AtomicUsize::new(0));
        let (tx, rx) = mpsc::channel::<(usize, Vec<Vec<u64>>)>();
        let n_jobs = self.pool.n_workers().min(n_classes);
        for _ in 0..n_jobs {
            let core = Arc::clone(&self.core);
            let classes = Arc::clone(&classes);
            let stop = Arc::clone(&stop);
            let cursor = Arc::clone(&cursor);
            let tx = tx.clone();
            self.pool.execute(move || {
                // Worker-local state, reused across every class this
                // worker pulls: one arena, one item-count buffer.
                let mut scratch: Vec<TidSet> = Vec::new();
                let mut item_counts: Vec<usize> = Vec::new();
                loop {
                    if stop.load(Ordering::Acquire) {
                        break;
                    }
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(class) = classes.get(i) else { break };
                    let mut out: Vec<Vec<u64>> = (0..class.members.len())
                        .map(|_| vec![0u64; class.table_len()])
                        .collect();
                    core.count_class(class, &mut item_counts, &mut scratch, &mut out);
                    if tx.send((i, out)).is_err() {
                        break; // receiver gone: the batch is over
                    }
                }
            });
        }
        drop(tx);
        let inert = probe.is_inert();
        let mut stopped = false;
        let mut completed = 0usize;
        loop {
            let msg = if inert {
                rx.recv().map_err(|_| ())
            } else {
                match rx.recv_timeout(PROBE_POLL) {
                    Ok(msg) => Ok(msg),
                    Err(mpsc::RecvTimeoutError::Timeout) => {
                        if !stopped && probe.should_stop() {
                            stopped = true;
                            stop.store(true, Ordering::Release);
                        }
                        continue;
                    }
                    Err(mpsc::RecvTimeoutError::Disconnected) => Err(()),
                }
            };
            let Ok((i, out)) = msg else { break };
            let class = &classes[i];
            for (local, &row) in out.into_iter().zip(&class.rows) {
                results[row] = local;
            }
            done.tables_completed += class.members.len() as u64;
            done.cells_completed += class.cells();
            // First trip wins: later classes still draining out of the
            // workers are kept (they are sound), but no new class starts.
            if probe.charge(class.cells()) && !stopped {
                stopped = true;
                stop.store(true, Ordering::Release);
            }
            completed += 1;
        }
        assert!(
            stopped || completed == n_classes,
            "parallel vertical counting lost {} classes (worker died outside \
             the interruption protocol — counting kernel bug)",
            n_classes - completed
        );
        stopped
    }
}

/// Shared epilogue: a batch is an error only if it was interrupted *and*
/// work remains — an interrupt after the last table still completes the
/// batch.
fn finish(
    interrupted: bool,
    done: BatchInterrupted,
    results: Vec<Vec<u64>>,
    n_sets: usize,
) -> Result<Vec<Vec<u64>>, BatchInterrupted> {
    if interrupted && done.tables_completed < n_sets as u64 {
        Err(done)
    } else {
        Ok(results)
    }
}

/// The rung of the degradation ladder a [`ParallelVerticalCounter`] is
/// currently answering batches from. Degradation is sticky and only
/// moves down: vertical-parallel → vertical → horizontal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DegradationRung {
    /// Pool-parallel vertical counting (the preferred rung).
    Parallel,
    /// Single-threaded vertical counting — the per-worker arenas no
    /// longer fit the memory budget, one arena still does.
    Vertical,
    /// Guarded horizontal scans — even one scratch arena exceeds the
    /// budget.
    Horizontal,
}

/// Tid-set counter that fans level batches over a worker pool, with a
/// three-rung memory-pressure degradation ladder.
///
/// Like [`VerticalCounter`](crate::counting::VerticalCounter) it keeps a
/// reference to the source database so it can degrade gracefully. The
/// ladder is checked per batch against the probe's
/// [`arena_budget_bytes`](CountProbe::arena_budget_bytes): parallel
/// counting needs one scratch arena *per worker*, sequential vertical
/// needs one, horizontal needs none. Any batch answered below
/// [`DegradationRung::Parallel`] increments
/// [`CountingStats::degraded_batches`].
#[derive(Debug)]
pub struct ParallelVerticalCounter<'a> {
    db: &'a TransactionDb,
    index: ParallelVerticalIndex,
    /// Sequential twin sharing the same core — the `Vertical` rung and
    /// the single-set path run here, with no second index build.
    seq: VerticalIndex,
    stats: CountingStats,
    rung: DegradationRung,
}

impl<'a> ParallelVerticalCounter<'a> {
    /// Builds the index over `db` (one scan) on the process-wide pool.
    pub fn new(db: &'a TransactionDb) -> Self {
        Self::from_index(db, ParallelVerticalIndex::build(db))
    }

    /// Builds on a private pool of `n_workers` threads.
    pub fn with_workers(db: &'a TransactionDb, n_workers: usize) -> Self {
        Self::from_index(db, ParallelVerticalIndex::build_with_workers(db, n_workers))
    }

    fn from_index(db: &'a TransactionDb, index: ParallelVerticalIndex) -> Self {
        let seq = VerticalIndex::from_core(Arc::clone(index_core(&index)));
        ParallelVerticalCounter {
            db,
            index,
            seq,
            stats: CountingStats {
                db_scans: 1,
                ..CountingStats::default()
            },
            rung: DegradationRung::Parallel,
        }
    }

    /// Direct access to the underlying parallel index.
    pub fn index(&self) -> &ParallelVerticalIndex {
        &self.index
    }

    /// Mutable access (e.g. [`ParallelVerticalIndex::set_work_floor`]).
    pub fn index_mut(&mut self) -> &mut ParallelVerticalIndex {
        &mut self.index
    }

    /// The ladder rung the next batch will be answered from.
    pub fn rung(&self) -> DegradationRung {
        self.rung
    }

    /// Applies the (sticky, downward-only) degradation ladder for a
    /// batch needing `depths` scratch recursion levels.
    fn apply_ladder(&mut self, probe: &dyn CountProbe, depths: usize) {
        let Some(budget) = probe.arena_budget_bytes() else {
            return;
        };
        let per_arena = VerticalIndex::scratch_bytes(self.index.n_transactions(), depths);
        let workers = self.index.n_workers().max(1);
        if self.rung == DegradationRung::Parallel && per_arena.saturating_mul(workers) > budget {
            self.rung = DegradationRung::Vertical;
        }
        if self.rung == DegradationRung::Vertical && per_arena > budget {
            self.rung = DegradationRung::Horizontal;
        }
    }
}

fn index_core(index: &ParallelVerticalIndex) -> &Arc<VerticalCore> {
    &index.core
}

impl MintermCounter for ParallelVerticalCounter<'_> {
    fn minterm_counts(&mut self, set: &Itemset) -> Vec<u64> {
        self.stats += CountingStats::tables(1, 1u64 << set.len());
        self.seq.minterm_counts(set)
    }

    fn minterm_counts_batch(&mut self, sets: &[Itemset]) -> Vec<Vec<u64>> {
        match self.minterm_counts_batch_guarded(sets, &NoProbe) {
            Ok(tables) => tables,
            Err(_) => unreachable!("NoProbe never interrupts"),
        }
    }

    fn minterm_counts_batch_guarded(
        &mut self,
        sets: &[Itemset],
        probe: &dyn CountProbe,
    ) -> Result<Vec<Vec<u64>>, BatchInterrupted> {
        if sets.is_empty() {
            return Ok(Vec::new());
        }
        let depths = sets
            .iter()
            .map(|s| s.len().saturating_sub(2))
            .max()
            .unwrap_or(0);
        self.apply_ladder(probe, depths);
        let outcome = match self.rung {
            DegradationRung::Parallel => self.index.minterm_counts_batch_guarded(sets, probe),
            DegradationRung::Vertical => {
                self.stats.degraded_batches += 1;
                self.seq.minterm_counts_batch_guarded(sets, probe)
            }
            DegradationRung::Horizontal => {
                self.stats.degraded_batches += 1;
                return horizontal_batch_guarded(self.db, sets, probe, &mut self.stats);
            }
        };
        match outcome {
            Ok(tables) => {
                self.stats += CountingStats::tables(
                    sets.len() as u64,
                    sets.iter().map(|s| 1u64 << s.len()).sum::<u64>(),
                );
                Ok(tables)
            }
            Err(partial) => {
                self.stats +=
                    CountingStats::tables(partial.tables_completed, partial.cells_completed);
                Err(partial)
            }
        }
    }

    fn n_transactions(&self) -> usize {
        self.index.n_transactions()
    }

    fn stats(&self) -> CountingStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counting::HorizontalCounter;

    fn db(n: usize) -> TransactionDb {
        TransactionDb::from_ids(
            8,
            (0..n).map(|i| {
                let mut t = Vec::new();
                if i % 2 == 0 {
                    t.extend([0, 1]);
                }
                if i % 3 == 0 {
                    t.push(2);
                }
                if i % 5 == 0 {
                    t.extend([3, 4]);
                }
                if i % 7 == 0 {
                    t.extend([5, 6, 7]);
                }
                t
            }),
        )
    }

    fn level() -> Vec<Itemset> {
        vec![
            Itemset::from_ids([0, 1]),
            Itemset::from_ids([0, 2]),
            Itemset::from_ids([0, 1, 2]),
            Itemset::from_ids([0, 1, 3]),
            Itemset::from_ids([2, 3, 4]),
            Itemset::from_ids([0, 1, 2, 3]),
            Itemset::from_ids([3, 4, 5, 6]),
            Itemset::from_ids([5]),
            Itemset::empty(),
        ]
    }

    #[test]
    fn pooled_batch_matches_sequential_vertical_exactly() {
        let d = db(600);
        let sets = level();
        let mut seq = VerticalIndex::build(&d);
        let expected = seq.minterm_counts_batch(&sets);
        for workers in [1usize, 2, 4] {
            let mut par = ParallelVerticalIndex::build_with_workers(&d, workers);
            par.set_work_floor(0); // force pool dispatch
            assert_eq!(
                par.minterm_counts_batch(&sets),
                expected,
                "workers={workers}"
            );
        }
    }

    #[test]
    fn work_floor_routes_small_batches_sequentially() {
        let d = db(60);
        let sets = level();
        let mut par = ParallelVerticalIndex::build_with_workers(&d, 4);
        let before = par.pool.jobs_run();
        let got = par.minterm_counts_batch(&sets);
        assert_eq!(
            par.pool.jobs_run(),
            before,
            "a tiny batch must not dispatch pool jobs"
        );
        let mut seq = VerticalIndex::build(&d);
        assert_eq!(got, seq.minterm_counts_batch(&sets));
    }

    #[test]
    fn counter_matches_horizontal_counter() {
        let d = db(400);
        let sets = level();
        let mut h = HorizontalCounter::new(&d);
        let expected = h.minterm_counts_batch(&sets);
        let mut c = ParallelVerticalCounter::with_workers(&d, 3);
        c.index_mut().set_work_floor(0);
        assert_eq!(c.minterm_counts_batch(&sets), expected);
        assert_eq!(c.stats().tables_built, sets.len() as u64);
        assert_eq!(c.stats().db_scans, 1, "index build is the only scan");
        for set in &sets {
            assert_eq!(c.minterm_counts(set), h.minterm_counts(set), "{set}");
        }
    }

    #[test]
    fn stopped_probe_interrupts_before_any_class() {
        struct Stopped;
        impl CountProbe for Stopped {
            fn should_stop(&self) -> bool {
                true
            }
            fn charge(&self, _cells: u64) -> bool {
                true
            }
        }
        let d = db(500);
        let sets = vec![Itemset::from_ids([0, 1, 2]), Itemset::from_ids([3, 4, 5])];
        let mut par = ParallelVerticalIndex::build_with_workers(&d, 2);
        par.set_work_floor(0);
        let err = par
            .minterm_counts_batch_guarded(&sets, &Stopped)
            .unwrap_err();
        assert_eq!(err.tables_completed, 0);
    }

    #[test]
    fn budget_trip_keeps_completed_classes_and_reports_exact_stats() {
        use std::sync::atomic::AtomicU64;
        /// Trips once `budget` cells have been charged.
        struct Budget {
            budget: u64,
            spent: AtomicU64,
        }
        impl CountProbe for Budget {
            fn should_stop(&self) -> bool {
                self.spent.load(Ordering::Relaxed) >= self.budget
            }
            fn charge(&self, cells: u64) -> bool {
                self.spent.fetch_add(cells, Ordering::Relaxed) + cells >= self.budget
            }
        }
        let d = db(500);
        // Many distinct prefixes => many classes, so a small budget trips
        // mid-batch.
        let sets: Vec<Itemset> = (0..6)
            .map(|i| Itemset::from_ids([i, i + 1, i + 2]))
            .collect();
        let mut c = ParallelVerticalCounter::with_workers(&d, 2);
        c.index_mut().set_work_floor(0);
        let probe = Budget {
            budget: 9,
            spent: AtomicU64::new(0),
        };
        // The trip races the drain: workers may legitimately finish every
        // class before the stop flag lands, in which case the batch
        // completed and `Ok` is the correct answer. Both outcomes must
        // keep the stats exact.
        match c.minterm_counts_batch_guarded(&sets, &probe) {
            Err(err) => {
                assert!(err.tables_completed >= 1, "first class kept");
                assert!(err.tables_completed < sets.len() as u64, "batch truncated");
                assert_eq!(c.stats().tables_built, err.tables_completed);
                assert_eq!(c.stats().cells_counted, err.cells_completed);
            }
            Ok(tables) => {
                assert_eq!(tables.len(), sets.len());
                assert_eq!(c.stats().tables_built, sets.len() as u64);
            }
        }
        assert!(
            probe.spent.load(Ordering::Relaxed) >= probe.budget,
            "the budget did trip"
        );
    }

    #[test]
    fn ladder_degrades_parallel_to_vertical_to_horizontal() {
        struct Arena(usize);
        impl CountProbe for Arena {
            fn should_stop(&self) -> bool {
                false
            }
            fn charge(&self, _cells: u64) -> bool {
                false
            }
            fn arena_budget_bytes(&self) -> Option<usize> {
                Some(self.0)
            }
        }
        let d = db(640); // 10 blocks => one arena depth = 160 bytes
        let triples = vec![Itemset::from_ids([0, 1, 2]), Itemset::from_ids([3, 4, 5])];
        let per_arena = VerticalIndex::scratch_bytes(d.len(), 1);
        assert!(per_arena > 0);
        let workers = 4;
        let mut h = HorizontalCounter::new(&d);
        let expected = h.minterm_counts_batch(&triples);

        // Budget fits one arena but not four: drop to Vertical.
        let mut c = ParallelVerticalCounter::with_workers(&d, workers);
        c.index_mut().set_work_floor(0);
        assert_eq!(c.rung(), DegradationRung::Parallel);
        let got = c
            .minterm_counts_batch_guarded(&triples, &Arena(per_arena))
            .unwrap();
        assert_eq!(got, expected);
        assert_eq!(c.rung(), DegradationRung::Vertical);
        assert_eq!(c.stats().degraded_batches, 1);

        // Budget fits no arena at all: drop to Horizontal, stay there.
        let got = c.minterm_counts_batch_guarded(&triples, &Arena(1)).unwrap();
        assert_eq!(got, expected);
        assert_eq!(c.rung(), DegradationRung::Horizontal);
        assert_eq!(c.stats().degraded_batches, 2);

        // Degradation is sticky even with a generous later budget.
        let got = c
            .minterm_counts_batch_guarded(&triples, &Arena(usize::MAX))
            .unwrap();
        assert_eq!(got, expected);
        assert_eq!(c.rung(), DegradationRung::Horizontal);
        assert_eq!(c.stats().degraded_batches, 3);
    }

    #[test]
    fn pair_only_batches_never_degrade() {
        struct Arena;
        impl CountProbe for Arena {
            fn should_stop(&self) -> bool {
                false
            }
            fn charge(&self, _cells: u64) -> bool {
                false
            }
            fn arena_budget_bytes(&self) -> Option<usize> {
                Some(1)
            }
        }
        let d = db(100);
        // Pairs need zero scratch depths: even a 1-byte budget keeps the
        // parallel rung.
        let pairs = vec![Itemset::from_ids([0, 1]), Itemset::from_ids([2, 3])];
        let mut c = ParallelVerticalCounter::with_workers(&d, 4);
        c.minterm_counts_batch_guarded(&pairs, &Arena).unwrap();
        assert_eq!(c.rung(), DegradationRung::Parallel);
        assert_eq!(c.stats().degraded_batches, 0);
    }
}
