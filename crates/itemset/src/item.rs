//! The [`Item`] type: a dense integer identifier for a market-basket item.
//!
//! Items are identified by a `u32` index into the item universe
//! `0..n_items`. Attributes of items (price, type, ...) live in
//! `ccs-constraints`' attribute tables, keyed by this index, so the mining
//! kernel itself only ever moves small copyable ids around.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A single item, identified by its index in the item universe.
///
/// The identifier is dense: a database over `n` items uses ids
/// `0..n`. This makes per-item side tables (tid-sets, attribute columns)
/// simple arrays.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
pub struct Item(pub u32);

impl Item {
    /// Creates an item from a raw id.
    #[inline]
    pub const fn new(id: u32) -> Self {
        Item(id)
    }

    /// The raw numeric id of this item.
    #[inline]
    pub const fn id(self) -> u32 {
        self.0
    }

    /// The id as a `usize`, for indexing side tables.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for Item {
    #[inline]
    fn from(id: u32) -> Self {
        Item(id)
    }
}

impl From<Item> for u32 {
    #[inline]
    fn from(item: Item) -> Self {
        item.0
    }
}

impl fmt::Display for Item {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "i{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn item_roundtrips_through_u32() {
        let item = Item::new(42);
        assert_eq!(item.id(), 42);
        assert_eq!(u32::from(item), 42);
        assert_eq!(Item::from(42u32), item);
        assert_eq!(item.index(), 42usize);
    }

    #[test]
    fn item_orders_by_id() {
        assert!(Item::new(1) < Item::new(2));
        assert_eq!(Item::new(7), Item::new(7));
    }

    #[test]
    fn item_displays_with_prefix() {
        assert_eq!(Item::new(3).to_string(), "i3");
    }
}
