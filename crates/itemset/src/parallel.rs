//! [`ParallelCounter`]: data-parallel horizontal minterm counting.
//!
//! Splits the transaction database into contiguous chunks, counts each
//! chunk's contingency cells on its own thread (scoped, so no `'static`
//! bounds), and merges the per-chunk tables. Semantics are identical to
//! [`HorizontalCounter`](crate::counting::HorizontalCounter) — same
//! scan-per-table cost model, same statistics — divided across cores.
//! An extension beyond the paper (its testbed was a single-core Pentium),
//! used by the `Parallel` counting strategy of `ccs-core`.

use crate::counting::{
    cell_index, BatchInterrupted, CountProbe, CountingStats, MintermCounter, NoProbe, PROBE_CHUNK,
};
use crate::database::TransactionDb;
use crate::itemset::Itemset;

/// A horizontal scan counter that fans each scan out over `n_threads`
/// chunks of the database.
#[derive(Debug)]
pub struct ParallelCounter<'a> {
    db: &'a TransactionDb,
    n_threads: usize,
    stats: CountingStats,
}

impl<'a> ParallelCounter<'a> {
    /// Creates a counter over `db` using up to `n_threads` threads
    /// (clamped to at least 1).
    pub fn new(db: &'a TransactionDb, n_threads: usize) -> Self {
        ParallelCounter {
            db,
            n_threads: n_threads.max(1),
            stats: CountingStats::default(),
        }
    }

    /// Creates a counter sized to the machine's available parallelism.
    pub fn with_available_parallelism(db: &'a TransactionDb) -> Self {
        let n = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Self::new(db, n)
    }

    /// The number of worker threads a scan uses.
    pub fn n_threads(&self) -> usize {
        self.n_threads
    }
}

impl MintermCounter for ParallelCounter<'_> {
    fn minterm_counts(&mut self, set: &Itemset) -> Vec<u64> {
        let cells = 1usize << set.len();
        let n = self.db.len();
        self.stats.tables_built += 1;
        self.stats.db_scans += 1;
        self.stats.transactions_visited += n as u64;
        self.stats.cells_counted += cells as u64;

        // Small databases or single-thread configs: count inline.
        let threads = self.n_threads.min(n.div_ceil(1024).max(1));
        if threads <= 1 {
            let mut counts = vec![0u64; cells];
            for tid in 0..n {
                counts[cell_index(self.db.transaction(tid), set)] += 1;
            }
            return counts;
        }

        let chunk = n.div_ceil(threads);
        let db = self.db;
        let mut partials: Vec<Vec<u64>> = Vec::with_capacity(threads);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let lo = t * chunk;
                    let hi = ((t + 1) * chunk).min(n);
                    scope.spawn(move || {
                        let mut counts = vec![0u64; cells];
                        for tid in lo..hi {
                            counts[cell_index(db.transaction(tid), set)] += 1;
                        }
                        counts
                    })
                })
                .collect();
            for h in handles {
                // A worker panic is a bug in the counting kernel —
                // propagate it rather than fabricate counts.
                #[allow(clippy::expect_used)]
                let partial = h.join().expect("counting worker panicked");
                partials.push(partial);
            }
        });
        let mut counts = vec![0u64; cells];
        for partial in partials {
            for (acc, c) in counts.iter_mut().zip(partial) {
                *acc += c;
            }
        }
        counts
    }

    /// Counts a whole level in one logical scan, fanned out across
    /// candidates × chunks: each worker scans its chunk once, updating a
    /// private table per candidate, and the per-chunk tables are merged.
    fn minterm_counts_batch(&mut self, sets: &[Itemset]) -> Vec<Vec<u64>> {
        match self.minterm_counts_batch_guarded(sets, &NoProbe) {
            Ok(tables) => tables,
            Err(_) => unreachable!("NoProbe never interrupts"),
        }
    }

    /// Guarded fan-out: every worker re-checks the shared probe once per
    /// [`PROBE_CHUNK`] transactions of its own chunk and bails early when
    /// asked to stop. An interrupted scan completes *no* tables (a level
    /// is merged all-or-nothing), but the transactions actually visited
    /// by every worker are still recorded in the statistics.
    fn minterm_counts_batch_guarded(
        &mut self,
        sets: &[Itemset],
        probe: &dyn CountProbe,
    ) -> Result<Vec<Vec<u64>>, BatchInterrupted> {
        let n = self.db.len();
        let mut tables: Vec<Vec<u64>> =
            sets.iter().map(|s| vec![0u64; 1usize << s.len()]).collect();
        if sets.is_empty() {
            return Ok(tables);
        }
        self.stats.db_scans += 1;

        let threads = self.n_threads.min(n.div_ceil(1024).max(1));
        if threads <= 1 {
            for tid in 0..n {
                if tid % PROBE_CHUNK == 0 && tid > 0 && probe.should_stop() {
                    self.stats.transactions_visited += tid as u64;
                    return Err(BatchInterrupted::default());
                }
                let t = self.db.transaction(tid);
                for (set, table) in sets.iter().zip(tables.iter_mut()) {
                    table[cell_index(t, set)] += 1;
                }
            }
            self.stats.transactions_visited += n as u64;
        } else {
            let chunk = n.div_ceil(threads);
            let db = self.db;
            let mut partials: Vec<(u64, Vec<Vec<u64>>)> = Vec::with_capacity(threads);
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..threads)
                    .map(|t| {
                        let lo = t * chunk;
                        let hi = ((t + 1) * chunk).min(n);
                        scope.spawn(move || {
                            let mut counts: Vec<Vec<u64>> =
                                sets.iter().map(|s| vec![0u64; 1usize << s.len()]).collect();
                            for (steps, tid) in (lo..hi).enumerate() {
                                if steps % PROBE_CHUNK == 0 && steps > 0 && probe.should_stop() {
                                    return (steps as u64, None);
                                }
                                let txn = db.transaction(tid);
                                for (set, table) in sets.iter().zip(counts.iter_mut()) {
                                    table[cell_index(txn, set)] += 1;
                                }
                            }
                            ((hi - lo) as u64, Some(counts))
                        })
                    })
                    .collect();
                for h in handles {
                    #[allow(clippy::expect_used)] // propagate worker panics
                    let (visited, counts) = h.join().expect("counting worker panicked");
                    partials.push((visited, counts.unwrap_or_default()));
                }
            });
            let interrupted = partials.iter().any(|(_, counts)| counts.is_empty());
            self.stats.transactions_visited +=
                partials.iter().map(|&(visited, _)| visited).sum::<u64>();
            if interrupted {
                return Err(BatchInterrupted::default());
            }
            for (_, partial) in partials {
                for (table, part) in tables.iter_mut().zip(partial) {
                    for (acc, c) in table.iter_mut().zip(part) {
                        *acc += c;
                    }
                }
            }
        }
        let cells = tables.iter().map(|t| t.len() as u64).sum::<u64>();
        self.stats.tables_built += sets.len() as u64;
        self.stats.cells_counted += cells;
        let _ = probe.charge(cells);
        Ok(tables)
    }

    fn n_transactions(&self) -> usize {
        self.db.len()
    }

    fn stats(&self) -> CountingStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counting::HorizontalCounter;

    fn db(n: usize) -> TransactionDb {
        TransactionDb::from_ids(
            6,
            (0..n).map(|i| {
                let mut t = Vec::new();
                if i % 2 == 0 {
                    t.extend([0, 1]);
                }
                if i % 3 == 0 {
                    t.push(2);
                }
                if i % 7 == 0 {
                    t.extend([3, 4, 5]);
                }
                t
            }),
        )
    }

    #[test]
    fn matches_sequential_counter_across_sizes_and_threads() {
        for n in [0usize, 1, 100, 5000] {
            let d = db(n);
            for threads in [1usize, 2, 4, 16] {
                let mut par = ParallelCounter::new(&d, threads);
                let mut seq = HorizontalCounter::new(&d);
                for set in [
                    Itemset::from_ids([0]),
                    Itemset::from_ids([0, 1]),
                    Itemset::from_ids([0, 2, 3]),
                    Itemset::from_ids([1, 2, 3, 5]),
                ] {
                    assert_eq!(
                        par.minterm_counts(&set),
                        seq.minterm_counts(&set),
                        "n={n} threads={threads} set={set}"
                    );
                }
            }
        }
    }

    #[test]
    fn stats_count_logical_scans() {
        let d = db(5000);
        let mut par = ParallelCounter::new(&d, 4);
        par.minterm_counts(&Itemset::from_ids([0, 1]));
        par.minterm_counts(&Itemset::from_ids([0, 2]));
        let s = par.stats();
        assert_eq!(s.tables_built, 2);
        assert_eq!(s.db_scans, 2);
        assert_eq!(s.transactions_visited, 10_000);
    }

    #[test]
    fn batch_matches_sequential_batch_and_counts_one_scan() {
        for n in [0usize, 1, 100, 5000] {
            let d = db(n);
            let sets = vec![
                Itemset::from_ids([0, 1]),
                Itemset::from_ids([0, 2]),
                Itemset::from_ids([2, 3, 4]),
                Itemset::from_ids([5]),
            ];
            let mut seq = HorizontalCounter::new(&d);
            let expected = seq.minterm_counts_batch(&sets);
            for threads in [1usize, 2, 8] {
                let mut par = ParallelCounter::new(&d, threads);
                assert_eq!(
                    par.minterm_counts_batch(&sets),
                    expected,
                    "n={n} threads={threads}"
                );
                let s = par.stats();
                assert_eq!(s.db_scans, 1, "batch must be one logical scan");
                assert_eq!(s.tables_built, sets.len() as u64);
                assert_eq!(s.transactions_visited, n as u64);
            }
        }
    }

    #[test]
    fn thread_count_is_clamped() {
        let d = db(10);
        assert_eq!(ParallelCounter::new(&d, 0).n_threads(), 1);
        assert!(ParallelCounter::with_available_parallelism(&d).n_threads() >= 1);
    }
}
