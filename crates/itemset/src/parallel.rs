//! [`ParallelCounter`]: data-parallel horizontal minterm counting.
//!
//! Splits the transaction database into contiguous chunks, counts each
//! chunk's contingency cells on a persistent [`WorkerPool`], and merges
//! the per-chunk tables. Semantics are identical to
//! [`HorizontalCounter`](crate::counting::HorizontalCounter) — same
//! scan-per-table cost model, same statistics — divided across cores.
//! An extension beyond the paper (its testbed was a single-core Pentium),
//! used by the `Parallel` counting strategy of `ccs-core`.
//!
//! Two lessons from the original scoped-thread implementation are baked
//! in:
//!
//! * **No per-scan spawn.** Spawning threads for every scan made the
//!   parallel counter *slower* than its sequential twin on the benchmark
//!   shape. Scans now dispatch onto a pool created once and reused for
//!   the life of the counter.
//! * **A sequential work floor.** When `candidates × transactions` is
//!   small, dispatch overhead dominates; such scans run inline on the
//!   calling thread, byte-for-byte identical to the sequential scan.
//!
//! Pool jobs are `'static`, so the first pooled scan snapshots the
//! database into an `Arc` (one full copy, kept for the counter's life).
//! Scans below the work floor never pay that copy.
//!
//! The guarded protocol mirrors [`crate::vertical_par`]: workers never
//! see the borrowed [`CountProbe`] — the calling thread polls it while
//! draining results and raises a shared stop flag; workers re-check the
//! flag once per [`PROBE_CHUNK`] transactions. An interrupted scan
//! completes *no* tables (a level is merged all-or-nothing), but the
//! transactions actually visited are still recorded in the statistics.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

use crate::counting::{
    cell_index, BatchInterrupted, CountProbe, CountingStats, MintermCounter, NoProbe, PROBE_CHUNK,
};
use crate::database::TransactionDb;
use crate::itemset::Itemset;
use crate::pool::WorkerPool;

/// Minimum `candidates × transactions` before a scan is fanned out;
/// below it, pool dispatch costs more than the scan itself.
pub const PARALLEL_WORK_FLOOR: u64 = 1 << 16;

/// How long the calling thread waits for chunk results between probe
/// polls when the probe is armed.
const PROBE_POLL: Duration = Duration::from_millis(1);

/// A horizontal scan counter that fans each scan out over database
/// chunks on a persistent worker pool.
#[derive(Debug)]
pub struct ParallelCounter<'a> {
    db: &'a TransactionDb,
    /// Owned snapshot shared with pool jobs, created on the first scan
    /// that actually engages the pool.
    shared_db: Option<Arc<TransactionDb>>,
    pool: Arc<WorkerPool>,
    work_floor: u64,
    stats: CountingStats,
}

impl<'a> ParallelCounter<'a> {
    /// Creates a counter over `db` with a private pool of up to
    /// `n_threads` workers (clamped to at least 1).
    pub fn new(db: &'a TransactionDb, n_threads: usize) -> Self {
        Self::with_pool(db, Arc::new(WorkerPool::new(n_threads)))
    }

    /// Creates a counter on the process-wide pool (sized to the
    /// machine's available parallelism).
    pub fn with_available_parallelism(db: &'a TransactionDb) -> Self {
        Self::with_pool(db, Arc::clone(WorkerPool::global()))
    }

    /// Creates a counter on an existing pool.
    pub fn with_pool(db: &'a TransactionDb, pool: Arc<WorkerPool>) -> Self {
        ParallelCounter {
            db,
            shared_db: None,
            pool,
            work_floor: PARALLEL_WORK_FLOOR,
            stats: CountingStats::default(),
        }
    }

    /// The number of pool workers a scan can use.
    pub fn n_threads(&self) -> usize {
        self.pool.n_workers().max(1)
    }

    /// Overrides the sequential work floor (tests and benchmarks set `0`
    /// to force pool dispatch on shapes the default floor would —
    /// correctly — run inline).
    pub fn set_work_floor(&mut self, floor: u64) {
        self.work_floor = floor;
    }

    /// The `Arc` snapshot of the database, created on first use.
    fn shared_db(&mut self) -> Arc<TransactionDb> {
        let db = self.db;
        Arc::clone(self.shared_db.get_or_insert_with(|| Arc::new(db.clone())))
    }

    /// Sequential guarded scan (also the below-work-floor path).
    fn scan_sequential(
        &mut self,
        sets: &[Itemset],
        probe: &dyn CountProbe,
        tables: &mut [Vec<u64>],
    ) -> Result<(), BatchInterrupted> {
        let mut visited_in_chunk = 0usize;
        let mut visited = 0u64;
        for t in self.db.transactions() {
            if visited_in_chunk == PROBE_CHUNK {
                visited_in_chunk = 0;
                if probe.should_stop() {
                    self.stats.transactions_visited += visited;
                    return Err(BatchInterrupted::default());
                }
            }
            visited_in_chunk += 1;
            visited += 1;
            for (set, table) in sets.iter().zip(tables.iter_mut()) {
                table[cell_index(t, set)] += 1;
            }
        }
        self.stats.transactions_visited += visited;
        Ok(())
    }

    /// Pooled guarded scan: one job per contiguous chunk, results merged
    /// all-or-nothing on the calling thread.
    fn scan_pooled(
        &mut self,
        sets: &[Itemset],
        probe: &dyn CountProbe,
        tables: &mut [Vec<u64>],
    ) -> Result<(), BatchInterrupted> {
        let n = self.db.len();
        let shared_db = self.shared_db();
        let shared_sets: Arc<Vec<Itemset>> = Arc::new(sets.to_vec());
        let threads = self.pool.n_workers().min(n.div_ceil(PROBE_CHUNK)).max(1);
        let chunk = n.div_ceil(threads);
        let stop = Arc::new(AtomicBool::new(false));
        let (tx, rx) = mpsc::channel::<(u64, Option<Vec<Vec<u64>>>)>();
        let mut n_jobs = 0usize;
        for t in 0..threads {
            let lo = t * chunk;
            let hi = ((t + 1) * chunk).min(n);
            if lo >= hi {
                continue;
            }
            n_jobs += 1;
            let db = Arc::clone(&shared_db);
            let sets = Arc::clone(&shared_sets);
            let stop = Arc::clone(&stop);
            let tx = tx.clone();
            self.pool.execute(move || {
                let mut counts: Vec<Vec<u64>> =
                    sets.iter().map(|s| vec![0u64; 1usize << s.len()]).collect();
                for (steps, tid) in (lo..hi).enumerate() {
                    if steps % PROBE_CHUNK == 0 && steps > 0 && stop.load(Ordering::Acquire) {
                        let _ = tx.send((steps as u64, None));
                        return;
                    }
                    let txn = db.transaction(tid);
                    for (set, table) in sets.iter().zip(counts.iter_mut()) {
                        table[cell_index(txn, set)] += 1;
                    }
                }
                let _ = tx.send(((hi - lo) as u64, Some(counts)));
            });
        }
        drop(tx);
        let inert = probe.is_inert();
        let mut stopped = false;
        let mut interrupted = false;
        let mut received = 0usize;
        loop {
            let msg = if inert {
                rx.recv().map_err(|_| ())
            } else {
                match rx.recv_timeout(PROBE_POLL) {
                    Ok(msg) => Ok(msg),
                    Err(mpsc::RecvTimeoutError::Timeout) => {
                        if !stopped && probe.should_stop() {
                            stopped = true;
                            stop.store(true, Ordering::Release);
                        }
                        continue;
                    }
                    Err(mpsc::RecvTimeoutError::Disconnected) => Err(()),
                }
            };
            let Ok((visited, partial)) = msg else { break };
            received += 1;
            self.stats.transactions_visited += visited;
            match partial {
                Some(counts) => {
                    for (table, part) in tables.iter_mut().zip(counts) {
                        for (acc, c) in table.iter_mut().zip(part) {
                            *acc += c;
                        }
                    }
                }
                None => interrupted = true,
            }
        }
        assert_eq!(
            received, n_jobs,
            "parallel counting lost chunk results (worker died outside the \
             interruption protocol — counting kernel bug)"
        );
        if interrupted {
            Err(BatchInterrupted::default())
        } else {
            Ok(())
        }
    }
}

impl MintermCounter for ParallelCounter<'_> {
    fn minterm_counts(&mut self, set: &Itemset) -> Vec<u64> {
        let n = self.db.len() as u64;
        if self.pool.n_workers() <= 1 || n < self.work_floor {
            // A below-floor single-candidate scan takes the same tight
            // loop as the horizontal counter — none of the batch
            // plumbing, so per-candidate parallel counting costs exactly
            // what sequential counting does on small work.
            let mut counts = vec![0u64; 1usize << set.len()];
            for t in self.db.transactions() {
                counts[cell_index(t, set)] += 1;
            }
            self.stats += CountingStats {
                db_scans: 1,
                transactions_visited: n,
                ..CountingStats::tables(1, counts.len() as u64)
            };
            return counts;
        }
        match self.minterm_counts_batch_guarded(std::slice::from_ref(set), &NoProbe) {
            Ok(mut tables) => tables.swap_remove(0),
            Err(_) => unreachable!("NoProbe never interrupts"),
        }
    }

    /// Counts a whole level in one logical scan, fanned out across
    /// candidates × chunks: each worker scans its chunk once, updating a
    /// private table per candidate, and the per-chunk tables are merged.
    fn minterm_counts_batch(&mut self, sets: &[Itemset]) -> Vec<Vec<u64>> {
        match self.minterm_counts_batch_guarded(sets, &NoProbe) {
            Ok(tables) => tables,
            Err(_) => unreachable!("NoProbe never interrupts"),
        }
    }

    fn minterm_counts_batch_guarded(
        &mut self,
        sets: &[Itemset],
        probe: &dyn CountProbe,
    ) -> Result<Vec<Vec<u64>>, BatchInterrupted> {
        if sets.is_empty() {
            return Ok(Vec::new());
        }
        if probe.should_stop() {
            return Err(BatchInterrupted::default());
        }
        let n = self.db.len();
        let mut tables: Vec<Vec<u64>> =
            sets.iter().map(|s| vec![0u64; 1usize << s.len()]).collect();
        self.stats.db_scans += 1;
        let work = (sets.len() as u64).saturating_mul(n as u64);
        if self.pool.n_workers() <= 1 || work < self.work_floor {
            self.scan_sequential(sets, probe, &mut tables)?;
        } else {
            self.scan_pooled(sets, probe, &mut tables)?;
        }
        let cells = tables.iter().map(|t| t.len() as u64).sum::<u64>();
        self.stats += CountingStats::tables(sets.len() as u64, cells);
        // The scan completed: the tables are sound and the caller keeps
        // them even if this charge exhausts the budget — the *next*
        // checkpoint observes the exhaustion.
        let _ = probe.charge(cells);
        Ok(tables)
    }

    fn n_transactions(&self) -> usize {
        self.db.len()
    }

    fn stats(&self) -> CountingStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counting::HorizontalCounter;

    fn db(n: usize) -> TransactionDb {
        TransactionDb::from_ids(
            6,
            (0..n).map(|i| {
                let mut t = Vec::new();
                if i % 2 == 0 {
                    t.extend([0, 1]);
                }
                if i % 3 == 0 {
                    t.push(2);
                }
                if i % 7 == 0 {
                    t.extend([3, 4, 5]);
                }
                t
            }),
        )
    }

    #[test]
    fn matches_sequential_counter_across_sizes_and_threads() {
        for n in [0usize, 1, 100, 5000] {
            let d = db(n);
            for threads in [1usize, 2, 4, 16] {
                let mut par = ParallelCounter::new(&d, threads);
                let mut seq = HorizontalCounter::new(&d);
                for set in [
                    Itemset::from_ids([0]),
                    Itemset::from_ids([0, 1]),
                    Itemset::from_ids([0, 2, 3]),
                    Itemset::from_ids([1, 2, 3, 5]),
                ] {
                    assert_eq!(
                        par.minterm_counts(&set),
                        seq.minterm_counts(&set),
                        "n={n} threads={threads} set={set}"
                    );
                }
            }
        }
    }

    #[test]
    fn pooled_path_matches_sequential_when_forced() {
        let d = db(5000);
        let sets = vec![
            Itemset::from_ids([0, 1]),
            Itemset::from_ids([0, 2]),
            Itemset::from_ids([2, 3, 4]),
            Itemset::from_ids([5]),
        ];
        let mut seq = HorizontalCounter::new(&d);
        let expected = seq.minterm_counts_batch(&sets);
        for threads in [2usize, 4] {
            let mut par = ParallelCounter::new(&d, threads);
            par.set_work_floor(0); // force pool dispatch
            assert_eq!(
                par.minterm_counts_batch(&sets),
                expected,
                "threads={threads}"
            );
            let s = par.stats();
            assert_eq!(s.db_scans, 1);
            assert_eq!(s.tables_built, sets.len() as u64);
            assert_eq!(s.transactions_visited, 5000);
        }
    }

    #[test]
    fn pool_is_reused_across_scans() {
        let d = db(5000);
        let mut par = ParallelCounter::new(&d, 2);
        par.set_work_floor(0);
        let sets = vec![Itemset::from_ids([0, 1]), Itemset::from_ids([0, 2])];
        let mut first = par.minterm_counts_batch(&sets);
        for _ in 0..5 {
            let again = par.minterm_counts_batch(&sets);
            assert_eq!(first, again);
            first = again;
        }
        assert_eq!(par.stats().db_scans, 6);
        // All scans ran on the same two resident workers.
        assert_eq!(par.n_threads(), 2);
    }

    #[test]
    fn stats_count_logical_scans() {
        let d = db(5000);
        let mut par = ParallelCounter::new(&d, 4);
        par.minterm_counts(&Itemset::from_ids([0, 1]));
        par.minterm_counts(&Itemset::from_ids([0, 2]));
        let s = par.stats();
        assert_eq!(s.tables_built, 2);
        assert_eq!(s.db_scans, 2);
        assert_eq!(s.transactions_visited, 10_000);
    }

    #[test]
    fn batch_matches_sequential_batch_and_counts_one_scan() {
        for n in [0usize, 1, 100, 5000] {
            let d = db(n);
            let sets = vec![
                Itemset::from_ids([0, 1]),
                Itemset::from_ids([0, 2]),
                Itemset::from_ids([2, 3, 4]),
                Itemset::from_ids([5]),
            ];
            let mut seq = HorizontalCounter::new(&d);
            let expected = seq.minterm_counts_batch(&sets);
            for threads in [1usize, 2, 8] {
                let mut par = ParallelCounter::new(&d, threads);
                assert_eq!(
                    par.minterm_counts_batch(&sets),
                    expected,
                    "n={n} threads={threads}"
                );
                let s = par.stats();
                assert_eq!(s.db_scans, 1, "batch must be one logical scan");
                assert_eq!(s.tables_built, sets.len() as u64);
                assert_eq!(s.transactions_visited, n as u64);
            }
        }
    }

    #[test]
    fn small_scans_never_snapshot_the_database() {
        let d = db(100);
        let mut par = ParallelCounter::new(&d, 4);
        par.minterm_counts_batch(&[Itemset::from_ids([0, 1])]);
        assert!(
            par.shared_db.is_none(),
            "a below-floor scan must not pay the Arc snapshot"
        );
    }

    #[test]
    fn pre_stopped_probe_interrupts_immediately() {
        struct Stopped;
        impl CountProbe for Stopped {
            fn should_stop(&self) -> bool {
                true
            }
            fn charge(&self, _cells: u64) -> bool {
                true
            }
        }
        let d = db(2000);
        let sets = vec![Itemset::from_ids([0, 1])];
        let mut par = ParallelCounter::new(&d, 4);
        par.set_work_floor(0);
        let err = par
            .minterm_counts_batch_guarded(&sets, &Stopped)
            .unwrap_err();
        assert_eq!(err, BatchInterrupted::default());
        assert_eq!(par.stats().tables_built, 0);
    }

    #[test]
    fn thread_count_is_clamped() {
        let d = db(10);
        assert_eq!(ParallelCounter::new(&d, 0).n_threads(), 1);
        assert!(ParallelCounter::with_available_parallelism(&d).n_threads() >= 1);
    }
}
