//! The [`Itemset`] type: an immutable, sorted, duplicate-free set of items.
//!
//! Itemsets are the currency of every algorithm in this workspace: lattice
//! levels, candidate sets, contingency tables, and answer sets are all
//! collections of `Itemset`. The representation is a sorted boxed slice,
//! which gives:
//!
//! * O(log n) membership and O(n + m) subset / union / intersection by merge,
//! * cheap hashing and total ordering (lexicographic), so itemsets can key
//!   `HashMap`s and live in `BTreeSet`s,
//! * two `usize`s of inline footprint, which matters when millions of
//!   candidates are in flight.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::item::Item;

/// An immutable, sorted, duplicate-free set of [`Item`]s.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default)]
#[serde(transparent)]
pub struct Itemset {
    items: Box<[Item]>,
}

impl Itemset {
    /// The empty itemset.
    pub fn empty() -> Self {
        Itemset {
            items: Box::new([]),
        }
    }

    /// A singleton itemset.
    pub fn singleton(item: Item) -> Self {
        Itemset {
            items: Box::new([item]),
        }
    }

    /// Builds an itemset from arbitrary items, sorting and deduplicating.
    pub fn from_items<I: IntoIterator<Item = Item>>(items: I) -> Self {
        let mut v: Vec<Item> = items.into_iter().collect();
        v.sort_unstable();
        v.dedup();
        Itemset {
            items: v.into_boxed_slice(),
        }
    }

    /// Builds an itemset from raw `u32` ids, sorting and deduplicating.
    pub fn from_ids<I: IntoIterator<Item = u32>>(ids: I) -> Self {
        Self::from_items(ids.into_iter().map(Item::new))
    }

    /// Builds an itemset from a vector already known to be sorted and
    /// duplicate-free.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the invariant does not hold.
    pub fn from_sorted_vec(v: Vec<Item>) -> Self {
        debug_assert!(
            v.windows(2).all(|w| w[0] < w[1]),
            "vector must be strictly sorted"
        );
        Itemset {
            items: v.into_boxed_slice(),
        }
    }

    /// Number of items in the set (its lattice level).
    #[inline]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` iff the set has no items.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The items, in increasing order.
    #[inline]
    pub fn items(&self) -> &[Item] {
        &self.items
    }

    /// Iterates over the items in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = Item> + '_ {
        self.items.iter().copied()
    }

    /// O(log n) membership test.
    pub fn contains(&self, item: Item) -> bool {
        self.items.binary_search(&item).is_ok()
    }

    /// `true` iff `self ⊆ other`, by linear merge.
    pub fn is_subset_of(&self, other: &Itemset) -> bool {
        if self.len() > other.len() {
            return false;
        }
        let mut oi = other.items.iter();
        'outer: for &x in self.items.iter() {
            for &y in oi.by_ref() {
                if y == x {
                    continue 'outer;
                }
                if y > x {
                    return false;
                }
            }
            return false;
        }
        true
    }

    /// `true` iff `self ⊇ other`.
    #[inline]
    pub fn is_superset_of(&self, other: &Itemset) -> bool {
        other.is_subset_of(self)
    }

    /// `true` iff the two sets share no item.
    pub fn is_disjoint_from(&self, other: &Itemset) -> bool {
        let (mut a, mut b) = (self.items.iter().peekable(), other.items.iter().peekable());
        while let (Some(&&x), Some(&&y)) = (a.peek(), b.peek()) {
            match x.cmp(&y) {
                std::cmp::Ordering::Less => {
                    a.next();
                }
                std::cmp::Ordering::Greater => {
                    b.next();
                }
                std::cmp::Ordering::Equal => return false,
            }
        }
        true
    }

    /// Set union, by linear merge.
    pub fn union(&self, other: &Itemset) -> Itemset {
        let mut out = Vec::with_capacity(self.len() + other.len());
        let (mut i, mut j) = (0, 0);
        while i < self.items.len() && j < other.items.len() {
            match self.items[i].cmp(&other.items[j]) {
                std::cmp::Ordering::Less => {
                    out.push(self.items[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(other.items[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push(self.items[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&self.items[i..]);
        out.extend_from_slice(&other.items[j..]);
        Itemset {
            items: out.into_boxed_slice(),
        }
    }

    /// Set intersection, by linear merge.
    pub fn intersection(&self, other: &Itemset) -> Itemset {
        let mut out = Vec::with_capacity(self.len().min(other.len()));
        let (mut i, mut j) = (0, 0);
        while i < self.items.len() && j < other.items.len() {
            match self.items[i].cmp(&other.items[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(self.items[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        Itemset {
            items: out.into_boxed_slice(),
        }
    }

    /// Set difference `self \ other`, by linear merge.
    pub fn difference(&self, other: &Itemset) -> Itemset {
        let mut out = Vec::with_capacity(self.len());
        let (mut i, mut j) = (0, 0);
        while i < self.items.len() && j < other.items.len() {
            match self.items[i].cmp(&other.items[j]) {
                std::cmp::Ordering::Less => {
                    out.push(self.items[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&self.items[i..]);
        Itemset {
            items: out.into_boxed_slice(),
        }
    }

    /// A new itemset with `item` inserted (no-op if already present).
    pub fn with_item(&self, item: Item) -> Itemset {
        match self.items.binary_search(&item) {
            Ok(_) => self.clone(),
            Err(pos) => {
                let mut v = Vec::with_capacity(self.len() + 1);
                v.extend_from_slice(&self.items[..pos]);
                v.push(item);
                v.extend_from_slice(&self.items[pos..]);
                Itemset {
                    items: v.into_boxed_slice(),
                }
            }
        }
    }

    /// A new itemset with `item` removed (no-op if absent).
    pub fn without_item(&self, item: Item) -> Itemset {
        match self.items.binary_search(&item) {
            Err(_) => self.clone(),
            Ok(pos) => {
                let mut v = Vec::with_capacity(self.len() - 1);
                v.extend_from_slice(&self.items[..pos]);
                v.extend_from_slice(&self.items[pos + 1..]);
                Itemset {
                    items: v.into_boxed_slice(),
                }
            }
        }
    }

    /// Iterates over the `k` subsets of size `k-1` (each obtained by dropping
    /// one item), in order of the dropped item.
    ///
    /// This is the workhorse of Apriori-style pruning: a candidate at level
    /// `k` is checked against the status of each of its `k` maximal proper
    /// subsets.
    pub fn subsets_dropping_one(&self) -> impl Iterator<Item = Itemset> + '_ {
        (0..self.items.len()).map(move |drop| {
            let mut v = Vec::with_capacity(self.items.len() - 1);
            v.extend_from_slice(&self.items[..drop]);
            v.extend_from_slice(&self.items[drop + 1..]);
            Itemset {
                items: v.into_boxed_slice(),
            }
        })
    }

    /// Iterates over *all* non-empty proper subsets. Exponential; intended
    /// for small sets (naive reference algorithms and tests).
    pub fn proper_subsets(&self) -> Vec<Itemset> {
        let n = self.items.len();
        assert!(n <= 20, "proper_subsets is exponential; refusing n > 20");
        let mut out = Vec::with_capacity((1usize << n).saturating_sub(2));
        for mask in 1..(1u32 << n) - 1 {
            let mut v = Vec::with_capacity(mask.count_ones() as usize);
            for (bit, &item) in self.items.iter().enumerate() {
                if mask & (1 << bit) != 0 {
                    v.push(item);
                }
            }
            out.push(Itemset {
                items: v.into_boxed_slice(),
            });
        }
        out
    }

    /// The prefix of length `len` (first `len` items). Used by the Apriori
    /// join, which merges two `k-1`-sets sharing their first `k-2` items.
    pub fn prefix(&self, len: usize) -> &[Item] {
        &self.items[..len]
    }

    /// Last (largest) item, if non-empty.
    pub fn last(&self) -> Option<Item> {
        self.items.last().copied()
    }
}

impl FromIterator<Item> for Itemset {
    fn from_iter<T: IntoIterator<Item = Item>>(iter: T) -> Self {
        Itemset::from_items(iter)
    }
}

impl FromIterator<u32> for Itemset {
    fn from_iter<T: IntoIterator<Item = u32>>(iter: T) -> Self {
        Itemset::from_ids(iter)
    }
}

impl<'a> IntoIterator for &'a Itemset {
    type Item = Item;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, Item>>;

    fn into_iter(self) -> Self::IntoIter {
        self.items.iter().copied()
    }
}

impl fmt::Display for Itemset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, item) in self.items.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{item}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(ids: &[u32]) -> Itemset {
        Itemset::from_ids(ids.iter().copied())
    }

    #[test]
    fn construction_sorts_and_dedups() {
        let s = set(&[3, 1, 2, 3, 1]);
        assert_eq!(s.items(), &[Item(1), Item(2), Item(3)]);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn empty_and_singleton() {
        assert!(Itemset::empty().is_empty());
        let s = Itemset::singleton(Item(5));
        assert_eq!(s.len(), 1);
        assert!(s.contains(Item(5)));
        assert!(!s.contains(Item(4)));
    }

    #[test]
    fn subset_relations() {
        let a = set(&[1, 3]);
        let b = set(&[1, 2, 3]);
        assert!(a.is_subset_of(&b));
        assert!(!b.is_subset_of(&a));
        assert!(b.is_superset_of(&a));
        assert!(a.is_subset_of(&a));
        assert!(Itemset::empty().is_subset_of(&a));
        assert!(!set(&[1, 4]).is_subset_of(&b));
    }

    #[test]
    fn disjointness() {
        assert!(set(&[1, 2]).is_disjoint_from(&set(&[3, 4])));
        assert!(!set(&[1, 2]).is_disjoint_from(&set(&[2, 3])));
        assert!(Itemset::empty().is_disjoint_from(&set(&[1])));
    }

    #[test]
    fn union_intersection_difference() {
        let a = set(&[1, 2, 4]);
        let b = set(&[2, 3]);
        assert_eq!(a.union(&b), set(&[1, 2, 3, 4]));
        assert_eq!(a.intersection(&b), set(&[2]));
        assert_eq!(a.difference(&b), set(&[1, 4]));
        assert_eq!(b.difference(&a), set(&[3]));
    }

    #[test]
    fn with_and_without_item() {
        let a = set(&[1, 3]);
        assert_eq!(a.with_item(Item(2)), set(&[1, 2, 3]));
        assert_eq!(a.with_item(Item(3)), a);
        assert_eq!(a.without_item(Item(3)), set(&[1]));
        assert_eq!(a.without_item(Item(9)), a);
    }

    #[test]
    fn subsets_dropping_one_enumerates_all_maximal_subsets() {
        let s = set(&[1, 2, 3]);
        let subs: Vec<Itemset> = s.subsets_dropping_one().collect();
        assert_eq!(subs, vec![set(&[2, 3]), set(&[1, 3]), set(&[1, 2])]);
    }

    #[test]
    fn proper_subsets_of_three_items() {
        let s = set(&[1, 2, 3]);
        let subs = s.proper_subsets();
        assert_eq!(subs.len(), 6); // 2^3 - 2
        assert!(subs.contains(&set(&[1])));
        assert!(subs.contains(&set(&[1, 3])));
        assert!(!subs.contains(&s));
        assert!(!subs.contains(&Itemset::empty()));
    }

    #[test]
    fn display_formats_braces() {
        assert_eq!(set(&[1, 2]).to_string(), "{i1, i2}");
        assert_eq!(Itemset::empty().to_string(), "{}");
    }

    #[test]
    fn ordering_is_lexicographic() {
        assert!(set(&[1, 2]) < set(&[1, 3]));
        assert!(set(&[1]) < set(&[1, 2]));
        assert!(set(&[2]) > set(&[1, 9]));
    }
}
