//! [`WorkerPool`]: a persistent, dependency-free work-stealing thread
//! pool for the parallel counting substrates.
//!
//! Hand-rolled on `std::thread` — no crossbeam, no rayon, no `unsafe` —
//! because this workspace vendors no threading crates. The pool is
//! created once (per run, or process-wide via [`WorkerPool::global`])
//! and reused across every mining level, so the per-scan thread-spawn
//! overhead that made the original scoped-thread `ParallelCounter`
//! *slower* than its sequential twin is paid exactly once.
//!
//! Scheduling is the classic injector + work-stealing shape:
//!
//! * an **injector deque** receives jobs submitted from outside the pool
//!   (the mining thread), consumed FIFO;
//! * a **per-worker local deque** receives jobs a worker submits while
//!   running (LIFO for the owner — the freshest job has the hottest
//!   cache — FIFO for thieves);
//! * an idle worker scans its own deque, then the injector, then
//!   **steals** from its siblings' deques, and only then parks on a
//!   condition variable.
//!
//! Sleep/wake uses an eventcount (a version counter bumped by every
//! submission) so a job pushed between a worker's last scan and its park
//! can never be lost. Because jobs outlive the submitting stack frame
//! (`'static`), callers hand data to workers via `Arc`s; the parallel
//! counters in [`crate::vertical_par`] and [`crate::parallel`] stream
//! results back over `mpsc` channels so the submitting thread keeps
//! ownership of probes and result buffers.
//!
//! Worker panics are contained: the worker catches the unwind, counts it
//! ([`WorkerPool::jobs_panicked`]), and keeps serving. Batch helpers
//! ([`WorkerPool::run_batch`]) re-raise the first captured panic on the
//! calling thread, so a counting-kernel bug still fails loudly instead
//! of fabricating counts.

use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};
use std::thread::JoinHandle;

/// A unit of work. `'static` because pool workers are persistent
/// threads: a job cannot borrow from the submitting stack frame.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Locks a mutex, ignoring poisoning: the pool's queues hold plain data
/// (`VecDeque`s and counters) that stay consistent even if a holder
/// panicked mid-push, and worker panics are already contained.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The eventcount guarded by the sleep mutex: `version` increments on
/// every submission, `shutdown` flips once on drop.
struct SleepState {
    version: u64,
    shutdown: bool,
}

struct PoolShared {
    /// Jobs submitted from outside the pool, consumed FIFO.
    injector: Mutex<VecDeque<Job>>,
    /// One stealable deque per worker: owner pops LIFO, thieves pop FIFO.
    locals: Vec<Mutex<VecDeque<Job>>>,
    sleep: Mutex<SleepState>,
    wake: Condvar,
    jobs_run: AtomicU64,
    steals: AtomicU64,
    jobs_panicked: AtomicU64,
}

impl PoolShared {
    /// Announces new work: bump the eventcount and wake every parked
    /// worker. Publishing the version *after* the push is what makes the
    /// scan-then-park protocol lossless.
    fn announce(&self) {
        let mut state = lock(&self.sleep);
        state.version = state.version.wrapping_add(1);
        drop(state);
        self.wake.notify_all();
    }

    /// One scheduling scan for worker `idx`: own deque (LIFO), injector
    /// (FIFO), then steal from siblings (FIFO).
    fn find_job(&self, idx: usize) -> Option<Job> {
        if let Some(job) = lock(&self.locals[idx]).pop_back() {
            return Some(job);
        }
        if let Some(job) = lock(&self.injector).pop_front() {
            return Some(job);
        }
        let n = self.locals.len();
        for off in 1..n {
            if let Some(job) = lock(&self.locals[(idx + off) % n]).pop_front() {
                self.steals.fetch_add(1, Ordering::Relaxed);
                return Some(job);
            }
        }
        None
    }
}

thread_local! {
    /// `(pool identity, worker index)` of the pool this thread serves,
    /// if any — lets [`WorkerPool::execute`] route submissions from a
    /// worker into its own local deque, and lets [`WorkerPool::run_batch`]
    /// detect (and avoid deadlocking on) re-entrant batches.
    static CURRENT_WORKER: Cell<Option<(usize, usize)>> = const { Cell::new(None) };
}

/// A persistent pool of worker threads with an injector deque and
/// per-worker stealing. See the module docs for the scheduling shape.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.workers.len())
            .field("jobs_run", &self.jobs_run())
            .field("steals", &self.steals())
            .finish()
    }
}

impl WorkerPool {
    /// Spawns a pool of `n_workers` threads (clamped to at least 1
    /// requested; if the OS refuses every spawn, the pool still works by
    /// running jobs inline on the submitting thread).
    pub fn new(n_workers: usize) -> Self {
        let n = n_workers.max(1);
        let shared = Arc::new(PoolShared {
            injector: Mutex::new(VecDeque::new()),
            locals: (0..n).map(|_| Mutex::new(VecDeque::new())).collect(),
            sleep: Mutex::new(SleepState {
                version: 0,
                shutdown: false,
            }),
            wake: Condvar::new(),
            jobs_run: AtomicU64::new(0),
            steals: AtomicU64::new(0),
            jobs_panicked: AtomicU64::new(0),
        });
        let workers = (0..n)
            .filter_map(|idx| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("ccs-pool-{idx}"))
                    .spawn(move || worker_loop(&shared, idx))
                    .ok()
            })
            .collect();
        WorkerPool { shared, workers }
    }

    /// A process-wide pool sized to the machine's available parallelism,
    /// created on first use and reused by every mining run — levels,
    /// runs, and benches all dispatch onto the same resident threads.
    pub fn global() -> &'static Arc<WorkerPool> {
        static GLOBAL: OnceLock<Arc<WorkerPool>> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let n = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1);
            Arc::new(WorkerPool::new(n))
        })
    }

    /// Number of live worker threads (0 if every spawn failed, in which
    /// case jobs run inline on the submitting thread).
    pub fn n_workers(&self) -> usize {
        self.workers.len()
    }

    /// Total jobs executed since the pool was created.
    pub fn jobs_run(&self) -> u64 {
        self.shared.jobs_run.load(Ordering::Relaxed)
    }

    /// Jobs a worker obtained from a sibling's deque rather than its own
    /// or the injector.
    pub fn steals(&self) -> u64 {
        self.shared.steals.load(Ordering::Relaxed)
    }

    /// Jobs that panicked (the panic was contained and the worker kept
    /// serving).
    pub fn jobs_panicked(&self) -> u64 {
        self.shared.jobs_panicked.load(Ordering::Relaxed)
    }

    /// `true` when the calling thread is one of this pool's workers.
    fn on_worker_thread(&self) -> Option<usize> {
        let me = Arc::as_ptr(&self.shared) as usize;
        CURRENT_WORKER.with(|w| match w.get() {
            Some((pool, idx)) if pool == me => Some(idx),
            _ => None,
        })
    }

    /// Submits a job. From an external thread it lands on the injector;
    /// from one of this pool's own workers it lands on that worker's
    /// local deque (stealable by idle siblings). With no live workers the
    /// job runs inline before `execute` returns.
    pub fn execute<F: FnOnce() + Send + 'static>(&self, f: F) {
        if self.workers.is_empty() {
            run_contained(&self.shared, Box::new(f));
            return;
        }
        let job: Job = Box::new(f);
        match self.on_worker_thread() {
            Some(idx) => lock(&self.shared.locals[idx]).push_back(job),
            None => lock(&self.shared.injector).push_back(job),
        }
        self.shared.announce();
    }

    /// Runs every task on the pool and returns their results in input
    /// order, blocking until all complete. A panicking task is re-raised
    /// on the calling thread after the rest of the batch finishes.
    ///
    /// Called *from* one of this pool's worker threads, the batch runs
    /// inline instead (the caller would otherwise deadlock waiting on a
    /// pool it is itself occupying).
    pub fn run_batch<T, F>(&self, tasks: Vec<F>) -> Vec<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        let n = tasks.len();
        if n == 0 {
            return Vec::new();
        }
        if n == 1 || self.workers.is_empty() || self.on_worker_thread().is_some() {
            return tasks.into_iter().map(|f| f()).collect();
        }
        let (tx, rx) = mpsc::channel::<(usize, std::thread::Result<T>)>();
        for (i, task) in tasks.into_iter().enumerate() {
            let tx = tx.clone();
            let shared = Arc::clone(&self.shared);
            self.execute(move || {
                let result = catch_unwind(AssertUnwindSafe(task));
                if result.is_err() {
                    shared.jobs_panicked.fetch_add(1, Ordering::Relaxed);
                }
                let _ = tx.send((i, result));
            });
        }
        drop(tx);
        let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
        let mut first_panic = None;
        for (i, result) in rx {
            match result {
                Ok(value) => slots[i] = Some(value),
                Err(payload) => {
                    if first_panic.is_none() {
                        first_panic = Some(payload);
                    }
                }
            }
        }
        if let Some(payload) = first_panic {
            resume_unwind(payload);
        }
        slots
            .into_iter()
            .map(|slot| match slot {
                Some(value) => value,
                // All senders are dropped only after every task ran, and
                // panics were re-raised above; a hole means a worker died
                // outside the panic protocol — fail loudly.
                None => panic!("worker pool lost a batch task result"),
            })
            .collect()
    }
}

impl Drop for WorkerPool {
    /// Drains remaining jobs, then stops and joins every worker.
    fn drop(&mut self) {
        lock(&self.shared.sleep).shutdown = true;
        self.shared.wake.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Runs one job with panic containment.
fn run_contained(shared: &PoolShared, job: Job) {
    shared.jobs_run.fetch_add(1, Ordering::Relaxed);
    if catch_unwind(AssertUnwindSafe(job)).is_err() {
        shared.jobs_panicked.fetch_add(1, Ordering::Relaxed);
    }
}

fn worker_loop(shared: &Arc<PoolShared>, idx: usize) {
    CURRENT_WORKER.with(|w| w.set(Some((Arc::as_ptr(shared) as usize, idx))));
    loop {
        // Eventcount protocol: snapshot the version, scan every queue,
        // and only park if the version is still unchanged — a submission
        // racing the scan bumps the version and the park is skipped.
        let seen = lock(&shared.sleep).version;
        if let Some(job) = shared.find_job(idx) {
            run_contained(shared, job);
            continue;
        }
        let state = lock(&shared.sleep);
        if state.shutdown {
            // Shutdown drains: exit only once no queue has work.
            return;
        }
        if state.version == seen {
            let _unused = shared
                .wake
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn run_batch_returns_results_in_input_order() {
        let pool = WorkerPool::new(4);
        let tasks: Vec<_> = (0..64).map(|i| move || i * i).collect();
        let got = pool.run_batch(tasks);
        let expected: Vec<i32> = (0..64).map(|i| i * i).collect();
        assert_eq!(got, expected);
        assert!(pool.jobs_run() >= 64);
    }

    #[test]
    fn pool_is_reused_across_batches_without_respawning() {
        let pool = WorkerPool::new(2);
        assert_eq!(pool.n_workers(), 2);
        for round in 0..10 {
            let tasks: Vec<_> = (0..8).map(|i| move || i + round).collect();
            let got = pool.run_batch(tasks);
            assert_eq!(got, (0..8).map(|i| i + round).collect::<Vec<_>>());
        }
        assert_eq!(pool.jobs_run(), 80);
    }

    #[test]
    fn execute_runs_detached_jobs() {
        let pool = WorkerPool::new(2);
        let counter = Arc::new(AtomicUsize::new(0));
        let (tx, rx) = mpsc::channel();
        for _ in 0..16 {
            let counter = Arc::clone(&counter);
            let tx = tx.clone();
            pool.execute(move || {
                counter.fetch_add(1, Ordering::Relaxed);
                let _ = tx.send(());
            });
        }
        drop(tx);
        for _ in 0..16 {
            rx.recv().unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn jobs_submitted_from_workers_go_to_local_deques_and_are_stealable() {
        let pool = Arc::new(WorkerPool::new(2));
        let (tx, rx) = mpsc::channel();
        let inner_pool = Arc::clone(&pool);
        pool.execute(move || {
            // Submitted from a worker: lands on its local deque; the
            // sibling worker can steal it while this one keeps going.
            for i in 0..8 {
                let tx = tx.clone();
                inner_pool.execute(move || {
                    let _ = tx.send(i);
                });
            }
        });
        let mut got: Vec<i32> = (0..8).map(|_| rx.recv().unwrap()).collect();
        got.sort_unstable();
        assert_eq!(got, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn panicking_task_propagates_to_caller_without_killing_workers() {
        let pool = WorkerPool::new(2);
        let tasks: Vec<Box<dyn FnOnce() -> i32 + Send>> = vec![
            Box::new(|| 1),
            Box::new(|| panic!("kernel bug")),
            Box::new(|| 3),
        ];
        let caught = catch_unwind(AssertUnwindSafe(|| pool.run_batch(tasks)));
        assert!(caught.is_err(), "the batch must re-raise the panic");
        assert_eq!(pool.jobs_panicked(), 1);
        // The pool survives and keeps serving.
        let after = pool.run_batch((0..4).map(|i| move || i).collect::<Vec<_>>());
        assert_eq!(after, vec![0, 1, 2, 3]);
    }

    #[test]
    fn nested_run_batch_from_a_worker_runs_inline_instead_of_deadlocking() {
        let pool = Arc::new(WorkerPool::new(1));
        let inner_pool = Arc::clone(&pool);
        let outer = pool.run_batch(vec![move || {
            // With one worker, dispatching this nested batch onto the
            // pool would deadlock; the pool must detect re-entry.
            inner_pool.run_batch((0..4).map(|i| move || i * 2).collect::<Vec<_>>())
        }]);
        assert_eq!(outer, vec![vec![0, 2, 4, 6]]);
    }

    #[test]
    fn zero_worker_request_is_clamped() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.n_workers(), 1);
        assert_eq!(pool.run_batch(vec![|| 7]), vec![7]);
    }

    #[test]
    fn empty_batch_is_empty() {
        let pool = WorkerPool::new(1);
        let out: Vec<i32> = pool.run_batch(Vec::<fn() -> i32>::new());
        assert!(out.is_empty());
    }

    #[test]
    fn global_pool_is_shared() {
        let a = Arc::as_ptr(WorkerPool::global());
        let b = Arc::as_ptr(WorkerPool::global());
        assert_eq!(a, b);
        assert!(WorkerPool::global().n_workers() >= 1);
    }

    #[test]
    fn drop_drains_pending_jobs() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let pool = WorkerPool::new(1);
            for _ in 0..32 {
                let counter = Arc::clone(&counter);
                pool.execute(move || {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
            // Drop joins after the queue drains.
        }
        assert_eq!(counter.load(Ordering::Relaxed), 32);
    }
}
