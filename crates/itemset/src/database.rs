//! [`TransactionDb`]: an in-memory market-basket database.
//!
//! A database is a sequence of *baskets* (transactions), each a sorted set of
//! items drawn from a universe `0..n_items`. The horizontal layout here is
//! the paper-faithful one — Algorithm BMS and its constrained variants cost
//! their work in database scans over this layout. A derived vertical layout
//! (per-item tid-sets) lives in [`crate::vertical`].

use serde::{Deserialize, Serialize};

use crate::item::Item;
use crate::itemset::Itemset;

/// An immutable in-memory transaction database.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransactionDb {
    n_items: u32,
    transactions: Vec<Box<[Item]>>,
}

impl TransactionDb {
    /// Builds a database over a universe of `n_items` items.
    ///
    /// Each transaction is sorted and deduplicated.
    ///
    /// # Panics
    ///
    /// Panics if any transaction mentions an item `>= n_items`.
    pub fn new<T, I>(n_items: u32, transactions: T) -> Self
    where
        T: IntoIterator<Item = I>,
        I: IntoIterator<Item = Item>,
    {
        let transactions: Vec<Box<[Item]>> = transactions
            .into_iter()
            .map(|t| {
                let mut v: Vec<Item> = t.into_iter().collect();
                v.sort_unstable();
                v.dedup();
                if let Some(&max) = v.last() {
                    assert!(
                        max.id() < n_items,
                        "transaction item {max} outside universe 0..{n_items}"
                    );
                }
                v.into_boxed_slice()
            })
            .collect();
        TransactionDb {
            n_items,
            transactions,
        }
    }

    /// Builds a database from raw `u32` item ids.
    pub fn from_ids<T, I>(n_items: u32, transactions: T) -> Self
    where
        T: IntoIterator<Item = I>,
        I: IntoIterator<Item = u32>,
    {
        Self::new(
            n_items,
            transactions
                .into_iter()
                .map(|t| t.into_iter().map(Item::new).collect::<Vec<_>>()),
        )
    }

    /// Size of the item universe.
    #[inline]
    pub fn n_items(&self) -> u32 {
        self.n_items
    }

    /// Number of transactions (baskets).
    #[inline]
    pub fn len(&self) -> usize {
        self.transactions.len()
    }

    /// `true` iff the database has no transactions.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.transactions.is_empty()
    }

    /// The transaction at index `tid` (sorted items).
    #[inline]
    pub fn transaction(&self, tid: usize) -> &[Item] {
        &self.transactions[tid]
    }

    /// Iterates over all transactions in tid order.
    pub fn transactions(&self) -> impl Iterator<Item = &[Item]> + '_ {
        self.transactions.iter().map(|t| &t[..])
    }

    /// Counts transactions containing every item of `set` (absolute support),
    /// by a full scan.
    pub fn support(&self, set: &Itemset) -> usize {
        self.transactions()
            .filter(|t| contains_sorted(t, set.items()))
            .count()
    }

    /// Relative support of `set` in `[0, 1]`. Zero for an empty database.
    pub fn relative_support(&self, set: &Itemset) -> f64 {
        if self.transactions.is_empty() {
            0.0
        } else {
            self.support(set) as f64 / self.transactions.len() as f64
        }
    }

    /// Per-item absolute supports, computed in one scan.
    pub fn item_supports(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.n_items as usize];
        for t in self.transactions() {
            for item in t {
                counts[item.index()] += 1;
            }
        }
        counts
    }

    /// Mean basket size.
    pub fn avg_transaction_len(&self) -> f64 {
        if self.transactions.is_empty() {
            0.0
        } else {
            let total: usize = self.transactions.iter().map(|t| t.len()).sum();
            total as f64 / self.transactions.len() as f64
        }
    }

    /// Largest basket size.
    pub fn max_transaction_len(&self) -> usize {
        self.transactions.iter().map(|t| t.len()).max().unwrap_or(0)
    }
}

/// `true` iff sorted slice `haystack` contains every element of the sorted
/// slice `needles` (both strictly increasing).
pub(crate) fn contains_sorted(haystack: &[Item], needles: &[Item]) -> bool {
    if needles.len() > haystack.len() {
        return false;
    }
    let mut hi = 0;
    'outer: for &n in needles {
        while hi < haystack.len() {
            match haystack[hi].cmp(&n) {
                std::cmp::Ordering::Less => hi += 1,
                std::cmp::Ordering::Equal => {
                    hi += 1;
                    continue 'outer;
                }
                std::cmp::Ordering::Greater => return false,
            }
        }
        return false;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> TransactionDb {
        TransactionDb::from_ids(
            5,
            vec![
                vec![0, 1, 2],
                vec![0, 1],
                vec![1, 2, 3],
                vec![4],
                vec![0, 1, 2, 3, 4],
            ],
        )
    }

    #[test]
    fn basic_accessors() {
        let db = db();
        assert_eq!(db.len(), 5);
        assert_eq!(db.n_items(), 5);
        assert!(!db.is_empty());
        assert_eq!(db.transaction(1), &[Item(0), Item(1)]);
        assert_eq!(db.max_transaction_len(), 5);
        assert!((db.avg_transaction_len() - 14.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn transactions_are_sorted_and_deduped() {
        let db = TransactionDb::from_ids(4, vec![vec![3, 1, 1, 0]]);
        assert_eq!(db.transaction(0), &[Item(0), Item(1), Item(3)]);
    }

    #[test]
    #[should_panic(expected = "outside universe")]
    fn out_of_universe_item_panics() {
        TransactionDb::from_ids(3, vec![vec![3]]);
    }

    #[test]
    fn support_counts_by_scan() {
        let db = db();
        assert_eq!(db.support(&Itemset::from_ids([0, 1])), 3);
        assert_eq!(db.support(&Itemset::from_ids([1, 2])), 3);
        assert_eq!(db.support(&Itemset::from_ids([0, 4])), 1);
        assert_eq!(db.support(&Itemset::empty()), 5);
        assert!((db.relative_support(&Itemset::from_ids([0, 1])) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn item_supports_matches_per_item_scan() {
        let db = db();
        assert_eq!(db.item_supports(), vec![3, 4, 3, 2, 2]);
    }

    #[test]
    fn empty_database_edge_cases() {
        let db = TransactionDb::from_ids(3, Vec::<Vec<u32>>::new());
        assert!(db.is_empty());
        assert_eq!(db.support(&Itemset::from_ids([0])), 0);
        assert_eq!(db.relative_support(&Itemset::from_ids([0])), 0.0);
        assert_eq!(db.avg_transaction_len(), 0.0);
    }

    #[test]
    fn contains_sorted_edge_cases() {
        let hay: Vec<Item> = [1u32, 3, 5, 7].iter().map(|&i| Item(i)).collect();
        let ok: Vec<Item> = [3u32, 7].iter().map(|&i| Item(i)).collect();
        let bad: Vec<Item> = [3u32, 8].iter().map(|&i| Item(i)).collect();
        assert!(contains_sorted(&hay, &ok));
        assert!(!contains_sorted(&hay, &bad));
        assert!(contains_sorted(&hay, &[]));
        assert!(!contains_sorted(&[], &ok));
    }
}
