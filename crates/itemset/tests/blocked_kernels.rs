//! Differential proptests for the blocked tid-set substrate.
//!
//! The tid-set kernels are written as remainder-free 8×u64 superblock
//! loops with per-superblock population hints (DESIGN.md §6.3); every
//! one of them must remain bit-identical to the obvious scalar model —
//! a sorted set of tids — across capacities that exercise partial tail
//! blocks (capacity ∤ 64), partial tail superblocks (capacity ∤ 512),
//! and multi-superblock bitmaps. On top of the kernels, the horizontally
//! sharded index must merge per-shard contingency tables into exactly
//! the unsharded counts for shard counts that do not divide anything
//! evenly, and [`CountingStats`] shard-merge must be associative and
//! order-independent, since per-shard deltas arrive in whatever order
//! the pool finishes them.

#![allow(clippy::unwrap_used)]

use std::collections::BTreeSet;

use proptest::prelude::*;

use ccs_itemset::{
    CountingStats, Itemset, MintermCounter, ShardedVerticalIndex, TidSet, TransactionDb,
    VerticalCounter,
};

/// Capacities biased toward the layout's seams: block boundaries (64),
/// superblock boundaries (512), and their immediate neighbourhoods,
/// alongside a general multi-superblock range.
fn capacity_strategy() -> impl Strategy<Value = usize> {
    prop_oneof![
        1usize..8,       // sub-word
        60usize..70,     // first block boundary
        120usize..132,   // interior block boundary
        505usize..520,   // first superblock boundary
        1015usize..1040, // second superblock boundary
        1usize..1300,    // general
    ]
}

/// Raw tids over the whole capacity domain; the test clips them to the
/// drawn capacity (the vendored proptest stand-in has no
/// `prop_flat_map`, so strategies cannot depend on each other).
fn tids_strategy() -> impl Strategy<Value = BTreeSet<usize>> {
    proptest::collection::btree_set(0usize..1300, 0..=128)
}

fn clip(raw: &BTreeSet<usize>, capacity: usize) -> BTreeSet<usize> {
    raw.iter().copied().filter(|&t| t < capacity).collect()
}

fn collect(set: &TidSet) -> BTreeSet<usize> {
    set.iter().collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    #[test]
    fn blocked_kernels_match_the_scalar_model(
        (cap, raw_a, raw_b, raw_c, limit) in (
            capacity_strategy(),
            tids_strategy(),
            tids_strategy(),
            tids_strategy(),
            0usize..1302,
        )
    ) {
        let (ma, mb, mc) = (clip(&raw_a, cap), clip(&raw_b, cap), clip(&raw_c, cap));
        let a = TidSet::from_ids(cap, ma.iter().copied());
        let b = TidSet::from_ids(cap, mb.iter().copied());
        let c = TidSet::from_ids(cap, mc.iter().copied());

        // Construction round-trips through the model, and the hint-summed
        // count agrees with it.
        prop_assert_eq!(collect(&a), ma.clone());
        prop_assert_eq!(a.count(), ma.len());
        prop_assert_eq!(TidSet::full(cap).count(), cap);

        // Fused counting kernels.
        let inter: BTreeSet<usize> = ma.intersection(&mb).copied().collect();
        prop_assert_eq!(a.intersection_count(&b), inter.len());
        let triple = ma.iter().filter(|t| mb.contains(t) && mc.contains(t)).count();
        prop_assert_eq!(a.triple_intersection_count(&b, &c), triple);
        let without = ma.len() - inter.len();
        prop_assert_eq!(a.count_split(&b), (inter.len(), without));

        // The limited kernel: exact below the limit, saturating (but
        // never over-counting) at or above it, and exact whenever the
        // limit is a true upper bound.
        let limited = a.intersection_count_limited(&b, limit);
        prop_assert!(limited <= inter.len());
        if limited < limit {
            prop_assert_eq!(limited, inter.len());
        } else {
            prop_assert!(limited >= limit);
        }
        prop_assert_eq!(a.intersection_count_limited(&b, ma.len()), inter.len());

        // The fused split, into deliberately dirty scratch so stale
        // superblocks must be overwritten (or zero-filled on the empty-
        // source fast path).
        let mut with = TidSet::full(cap);
        let mut without_set = TidSet::full(cap);
        a.split_into(&b, &mut with, &mut without_set);
        let model_without: BTreeSet<usize> = ma.difference(&mb).copied().collect();
        prop_assert_eq!(collect(&with), inter.clone());
        prop_assert_eq!(collect(&without_set), model_without.clone());
        prop_assert_eq!(with.count(), inter.len());
        prop_assert_eq!(without_set.count(), model_without.len());

        // In-place bulk mutators keep contents and hints consistent.
        let mut u = a.clone();
        u.union_with(&b);
        prop_assert_eq!(collect(&u), ma.union(&mb).copied().collect::<BTreeSet<_>>());
        prop_assert_eq!(u.count(), ma.union(&mb).count());
        let mut i = a.clone();
        i.intersect_with(&b);
        prop_assert_eq!(collect(&i), inter);
        let mut d = a.clone();
        d.subtract(&b);
        prop_assert_eq!(collect(&d), model_without);
    }
}

const N_ITEMS: u32 = 8;

fn db_strategy() -> impl Strategy<Value = TransactionDb> {
    proptest::collection::vec(proptest::collection::vec(0u32..N_ITEMS, 0..7), 0..80)
        .prop_map(|txns| TransactionDb::from_ids(N_ITEMS, txns))
}

fn sets_strategy() -> impl Strategy<Value = Vec<Itemset>> {
    proptest::collection::vec(
        proptest::collection::btree_set(0u32..N_ITEMS, 1..=5usize),
        1..10,
    )
    .prop_map(|sets| sets.into_iter().map(Itemset::from_ids).collect())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn shard_merged_counts_match_the_unsharded_index(
        (db, sets) in (db_strategy(), sets_strategy())
    ) {
        let mut reference = VerticalCounter::new(&db);
        let expected = reference.minterm_counts_batch(&sets);
        // Deliberately non-power-of-two shard counts: boundaries land
        // mid-superblock and shard lengths come out unequal.
        for shards in [1usize, 2, 3, 7] {
            let mut index = ShardedVerticalIndex::build_with_shards_and_workers(&db, shards, 2);
            index.set_work_floor(0);
            prop_assert_eq!(
                &index.minterm_counts_batch(&sets),
                &expected,
                "{} shards diverged", shards
            );
        }
    }
}

fn stats_strategy() -> impl Strategy<Value = CountingStats> {
    // Small enough that no sum of eight can overflow.
    let f = 0u64..1 << 20;
    (f.clone(), f.clone(), f.clone(), f.clone(), f.clone(), f).prop_map(
        |(
            tables_built,
            db_scans,
            transactions_visited,
            cells_counted,
            cache_hits,
            degraded_batches,
        )| {
            CountingStats {
                tables_built,
                db_scans,
                transactions_visited,
                cells_counted,
                cache_hits,
                degraded_batches,
            }
        },
    )
}

fn sum(deltas: &[CountingStats]) -> CountingStats {
    let mut acc = CountingStats::default();
    for d in deltas {
        acc += d;
    }
    acc
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    #[test]
    fn stats_shard_merge_is_associative_and_order_independent(
        deltas in proptest::collection::vec(stats_strategy(), 1..8),
        split in 0usize..8,
    ) {
        // Order-independence: per-shard deltas arrive in pool completion
        // order, so any permutation must merge to the same totals.
        let mut reversed = deltas.clone();
        reversed.reverse();
        prop_assert_eq!(sum(&deltas), sum(&reversed));

        // Associativity: merging shard subtotals (as the sharded batch
        // does per class) equals merging every delta directly.
        let mid = split.min(deltas.len());
        let mut grouped = sum(&deltas[..mid]);
        grouped += sum(&deltas[mid..]);
        prop_assert_eq!(grouped, sum(&deltas));
    }
}
