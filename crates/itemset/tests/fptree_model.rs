//! Differential property tests for the FP-tree pattern-growth
//! substrate: conditional-projection counting must be bit-identical to
//! a scalar `BTreeSet` model that classifies every transaction into its
//! contingency cell directly, on arbitrary databases and candidate
//! levels — and guarded runs must keep exact completed-candidate
//! accounting with partials that are prefixes (per candidate) of the
//! unguarded answer.

#![allow(clippy::unwrap_used)]

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;

use ccs_itemset::counting::{BatchInterrupted, CountProbe};
use ccs_itemset::{FpTree, FpTreeCounter, Itemset, MintermCounter, TransactionDb};

const N_ITEMS: u32 = 10;

/// The scalar model: for each transaction, membership of the `j`-th
/// smallest candidate item sets bit `j` of the cell index.
fn model_counts(db: &TransactionDb, set: &Itemset) -> Vec<u64> {
    let mut cells = vec![0u64; 1 << set.len()];
    for t in db.transactions() {
        let txn: BTreeSet<u32> = t.iter().map(|i| i.id()).collect();
        let mut cell = 0usize;
        for (j, item) in set.items().iter().enumerate() {
            if txn.contains(&item.id()) {
                cell |= 1 << j;
            }
        }
        cells[cell] += 1;
    }
    cells
}

fn db_strategy() -> impl Strategy<Value = TransactionDb> {
    proptest::collection::vec(proptest::collection::vec(0u32..N_ITEMS, 0..8), 0..100)
        .prop_map(|txns| TransactionDb::from_ids(N_ITEMS, txns))
}

/// Candidate levels with deliberate prefix/suffix sharing (btree-set
/// sampling over a small alphabet), mixed sizes 0..=6 — including the
/// empty set and singletons, which take the trivial path.
fn sets_strategy() -> impl Strategy<Value = Vec<Itemset>> {
    proptest::collection::vec(
        proptest::collection::btree_set(0u32..N_ITEMS, 0..=6usize),
        1..14,
    )
    .prop_map(|sets| sets.into_iter().map(Itemset::from_ids).collect())
}

/// A probe that flips to "stop" after a fixed number of charged cells,
/// like the real work-budget guard.
struct Budget {
    cells: u64,
    spent: AtomicU64,
}

impl CountProbe for Budget {
    fn should_stop(&self) -> bool {
        self.spent.load(Ordering::Relaxed) >= self.cells
    }
    fn charge(&self, cells: u64) -> bool {
        self.spent.fetch_add(cells, Ordering::Relaxed) + cells >= self.cells
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    #[test]
    fn fptree_counts_match_the_scalar_model(
        (db, sets) in (db_strategy(), sets_strategy())
    ) {
        let expected: Vec<Vec<u64>> =
            sets.iter().map(|s| model_counts(&db, s)).collect();

        let tree = FpTree::build(&db);
        let singles: Vec<Vec<u64>> =
            sets.iter().map(|s| tree.minterm_counts(s)).collect();
        prop_assert_eq!(&singles, &expected);
        prop_assert_eq!(&tree.minterm_counts_batch(&sets), &expected);

        let mut counter = FpTreeCounter::new(&db);
        prop_assert_eq!(&counter.minterm_counts_batch(&sets), &expected);
        let total_cells: u64 = sets.iter().map(|s| 1u64 << s.len()).sum();
        prop_assert_eq!(counter.stats().tables_built, sets.len() as u64);
        prop_assert_eq!(counter.stats().cells_counted, total_cells);
    }

    #[test]
    fn guarded_trips_keep_exact_accounting(
        (db, sets, budget) in (db_strategy(), sets_strategy(), 1u64..200)
    ) {
        let tree = FpTree::build(&db);
        let probe = Budget { cells: budget, spent: AtomicU64::new(0) };
        match tree.minterm_counts_batch_guarded(&sets, &probe) {
            Ok(results) => {
                // Completed batches are bit-identical to the model.
                let expected: Vec<Vec<u64>> =
                    sets.iter().map(|s| model_counts(&db, s)).collect();
                prop_assert_eq!(&results, &expected);
            }
            Err(BatchInterrupted { tables_completed, cells_completed }) => {
                // A trip reports fewer tables than the level and exactly
                // the cells of completed candidates — never a partial
                // table's worth.
                prop_assert!(tables_completed < sets.len() as u64);
                prop_assert!(cells_completed <= sets.iter().map(|s| 1u64 << s.len()).sum::<u64>());
                // The counter wrapper charges the same accounting into
                // its stats.
                let mut counter = FpTreeCounter::new(&db);
                let probe = Budget { cells: budget, spent: AtomicU64::new(0) };
                let partial = counter.minterm_counts_batch_guarded(&sets, &probe).unwrap_err();
                prop_assert_eq!(partial.tables_completed, tables_completed);
                prop_assert_eq!(partial.cells_completed, cells_completed);
                prop_assert_eq!(counter.stats().tables_built, tables_completed);
                prop_assert_eq!(counter.stats().cells_counted, cells_completed);
            }
        }
    }
}
