//! Theorem 1, live: with a monotone constraint, `VALID_MIN(Q)` can be a
//! *proper* subset of `MIN_VALID(Q)` — the paper's milk/bread/cheese
//! example rebuilt as a concrete database.
//!
//! `VALID_MIN` keeps only those minimal correlated sets that happen to be
//! valid; `MIN_VALID` also *grows* invalid minimal correlated sets until
//! a monotone constraint starts holding. Which one a user wants depends
//! on the application — the paper's point is that they differ and need
//! different algorithms (BMS+/BMS++ vs BMS*/BMS**).
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example two_semantics
//! ```

// Examples trade error handling for readability: `unwrap`/`expect` on
// fixed inputs that cannot fail.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use ccs::prelude::*;

fn main() {
    // Five items: milk(0, $1), bread(1, $2), butter(2, $3), cereal(3,
    // $4), cheese(4, $5). Milk and bread always co-occur — a strong pair
    // correlation. Cheese appears in exactly half the baskets *with the
    // same rate whether milk+bread are present or not*, so each
    // cheese pair is independent (uncorrelated) while the triple
    // {milk, bread, cheese} — a superset of the correlated pair — is
    // correlated, CT-supported, and the first set on the chain where the
    // monotone price constraint holds.
    let names = ["milk", "bread", "butter", "cereal", "cheese"];
    let mut txns: Vec<Vec<u32>> = Vec::new();
    for i in 0..120u32 {
        let mut t = Vec::new();
        if i % 2 == 0 {
            t.extend([0, 1]); // milk + bread, half the baskets
        }
        if i % 4 <= 1 {
            t.push(4); // cheese: 50% overall, 50% given milk+bread
        }
        if i % 3 == 0 {
            t.push(2); // butter, independent
        }
        if i % 5 == 0 {
            t.push(3); // cereal, independent
        }
        txns.push(t);
    }
    let db = TransactionDb::from_ids(5, txns);
    let attrs = AttributeTable::with_identity_prices(5);

    // The monotone constraint: the basket of correlated items must
    // include something expensive — max(S.price) ≥ 5, i.e. cheese.
    let query = CorrelationQuery {
        params: MiningParams {
            support_fraction: 0.1,
            ..MiningParams::paper()
        },
        constraints: ConstraintSet::new().and(Constraint::max_ge("price", 5.0)),
    };

    let pretty = |sets: &[Itemset]| {
        sets.iter()
            .map(|s| {
                let labels: Vec<&str> = s.iter().map(|i| names[i.index()]).collect();
                format!("{{{}}}", labels.join(", "))
            })
            .collect::<Vec<_>>()
            .join(", ")
    };

    let mut session = MiningSession::new(&db, &attrs);
    let valid_min = session
        .mine(&query, &MineRequest::new(Algorithm::BmsPlusPlus))
        .unwrap()
        .result;
    let min_valid = session
        .mine(&query, &MineRequest::new(Algorithm::BmsStarStar))
        .unwrap()
        .result;

    println!("constraint: {}", query.constraints);
    println!("VALID_MIN(Q) = {}", pretty(&valid_min.answers));
    println!("MIN_VALID(Q) = {}", pretty(&min_valid.answers));

    // Every VALID_MIN answer is a MIN_VALID answer (Theorem 1.1)…
    for s in &valid_min.answers {
        assert!(min_valid.contains(s), "Theorem 1.1 violated");
    }
    // …and here the inclusion is strict: {milk, bread} is correlated but
    // too cheap, and MIN_VALID grows it until cheese comes aboard.
    let grown: Vec<_> = min_valid
        .answers
        .iter()
        .filter(|s| !valid_min.contains(s))
        .cloned()
        .collect();
    println!(
        "\n{} answers exist only under MIN_VALID semantics: {}",
        grown.len(),
        pretty(&grown)
    );
    assert!(
        !grown.is_empty(),
        "expected MIN_VALID to strictly contain VALID_MIN in this setup"
    );
}
