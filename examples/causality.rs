//! Constrained causal discovery — the §6 future-work question answered:
//! constraints focus causal mining exactly as they focus correlation
//! mining.
//!
//! We plant a known causal structure in synthetic data — promotions and
//! rainy days each independently drive umbrella sales, and umbrella
//! sales drive checkout-line length — then let the CCU and CCC rules
//! recover it, once unconstrained and once focused by a price
//! constraint.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example causality
//! ```

// Examples trade error handling for readability: `unwrap`/`expect` on
// fixed inputs that cannot fail.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use ccs::itemset::HorizontalCounter;
use ccs::prelude::*;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    // Items: 0 = promotion flyer, 1 = rainy day, 2 = umbrella sale,
    // 3 = long checkout line, 4 = unrelated magazine.
    let names = ["promo", "rain", "umbrella", "queue", "magazine"];
    let mut rng = StdRng::seed_from_u64(2000);
    let txns: Vec<Vec<u32>> = (0..8_000)
        .map(|_| {
            let promo = rng.gen_bool(0.35);
            let rain = rng.gen_bool(0.35);
            // Collider: umbrella ⇐ promo OR rain (noisy).
            let umbrella = (promo || rain) && rng.gen_bool(0.9);
            // Chain: queue ⇐ umbrella (noisy) — so rain ⊥ queue | umbrella.
            let queue = if umbrella {
                rng.gen_bool(0.8)
            } else {
                rng.gen_bool(0.1)
            };
            let magazine = rng.gen_bool(0.3);
            let mut t = Vec::new();
            for (id, present) in [promo, rain, umbrella, queue, magazine]
                .into_iter()
                .enumerate()
            {
                if present {
                    t.push(id as u32);
                }
            }
            t
        })
        .collect();
    let db = TransactionDb::from_ids(5, txns);
    let attrs = AttributeTable::with_identity_prices(5);

    let query = CorrelationQuery {
        params: MiningParams {
            confidence: 0.95,
            support_fraction: 0.05,
            ..MiningParams::paper()
        },
        constraints: ConstraintSet::new(),
    };

    let mut counter = HorizontalCounter::new(&db);
    let out = ccs::core::discover_causality(&db, &attrs, &query, &mut counter).unwrap();
    let pretty = |i: Item| names[i.index()];
    println!("correlated pairs: {}", out.correlated_pairs.len());
    println!("causal findings (unconstrained):");
    for f in &out.findings {
        match f {
            CausalFinding::Collider {
                cause_1,
                cause_2,
                effect,
            } => {
                println!(
                    "  {} -> {} <- {}",
                    pretty(*cause_1),
                    pretty(*effect),
                    pretty(*cause_2)
                );
            }
            CausalFinding::Mediator { a, mediator, c } => {
                println!(
                    "  {} - [{}] - {}  (mediated)",
                    pretty(*a),
                    pretty(*mediator),
                    pretty(*c)
                );
            }
        }
    }

    // Focused run: the analyst only cares about structures among the
    // first three "weather & promotion" items (prices 1..=3).
    let focused = CorrelationQuery {
        constraints: ConstraintSet::new().and(Constraint::max_le("price", 3.0)),
        ..query
    };
    let mut counter = HorizontalCounter::new(&db);
    let out2 = ccs::core::discover_causality(&db, &attrs, &focused, &mut counter).unwrap();
    println!(
        "\nwith focus '{}': {} findings from {} tables (vs {} unconstrained)",
        focused.constraints,
        out2.findings.len(),
        out2.metrics.tables_built,
        out.metrics.tables_built
    );
}
