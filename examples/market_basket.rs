//! The supermarket-manager scenario from §1 of the paper: do customers
//! on a budget buy *correlated bundles of cheap items*?
//!
//! The manager's focus is captured by the conjunction
//! `S.price < c & sum(S.price) < maxsum` — both anti-monotone, the first
//! also succinct — exactly the constraint mix the paper uses to motivate
//! pushing constraints into the miner instead of filtering afterwards.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example market_basket
//! ```

// Examples trade error handling for readability: `unwrap`/`expect` on
// fixed inputs that cannot fail.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use ccs::prelude::*;

fn main() {
    // Quest-style "real world" data (the paper's method 1), with a
    // modest universe so the example runs in a second.
    let quest = QuestParams::small(5_000, 50, 2024);
    let db = generate_quest(&quest);

    // Prices: item i costs $(i+1), so the universe spans $1..$50.
    let attrs = AttributeTable::with_identity_prices(50);

    // "Customers who do not want to spend a lot of money overall, only
    // buy the cheaper items": every item under $20, basket total under
    // $45. (max ≤ is the succinct rendering of `S.price < c`.)
    let constraints = ConstraintSet::new()
        .and(Constraint::max_le("price", 20.0))
        .and(Constraint::sum_le("price", 45.0));
    let query = CorrelationQuery {
        params: MiningParams::paper(),
        constraints,
    };

    println!(
        "query: {{ S | CT-supported & correlated & {} }}\n",
        query.constraints
    );

    // Compare the naive and constraint-pushing miners: same answers,
    // very different work. One session serves every request.
    let mut session = MiningSession::new(&db, &attrs);
    for algo in [Algorithm::BmsPlus, Algorithm::BmsPlusPlus] {
        let result = session
            .mine(&query, &MineRequest::new(algo))
            .expect("valid query")
            .result;
        println!(
            "{:<6} {:>6} tables, {:>8.3}s, {} answers",
            algo.name(),
            result.metrics.tables_built,
            result.metrics.elapsed.as_secs_f64(),
            result.answers.len()
        );
    }

    let result = session
        .mine(&query, &MineRequest::new(Algorithm::BmsPlusPlus))
        .expect("valid query")
        .result;
    println!("\ncheap correlated bundles:");
    for set in result.answers.iter().take(15) {
        let total: f64 = set.iter().map(|i| attrs.numeric_value("price", i)).sum();
        println!("  {set} (total ${total})");
    }
    if result.answers.len() > 15 {
        println!("  … and {} more", result.answers.len() - 15);
    }
}
