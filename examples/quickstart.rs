//! Quickstart: generate synthetic basket data, mine constrained
//! correlated sets with BMS++, and inspect a contingency table.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

// Examples trade error handling for readability: `unwrap`/`expect` on
// fixed inputs that cannot fail.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use ccs::itemset::HorizontalCounter;
use ccs::prelude::*;

fn main() {
    // 1. Synthetic market-basket data: the paper's "method 2" generator
    //    plants known correlation rules, so we can see the miner find
    //    them.
    let params = RuleParams::small(3_000, 40, 7);
    let data = generate_rules(&params);
    println!(
        "database: {} baskets over {} items",
        data.db.len(),
        data.db.n_items()
    );
    println!("planted rules:");
    for rule in &data.rules {
        println!("  {} (support {:.2})", rule.items, rule.support);
    }

    // 2. Per-item attributes: the paper's setup prices item i at $i+1.
    let attrs = AttributeTable::with_identity_prices(40);

    // 3. A constrained correlation query, in the paper's notation:
    //    CT-supported, correlated, and with every item priced ≤ $30.
    let constraints = parse_constraints("correlated & ct_supported & max(S.price) <= 30", &attrs)
        .expect("well-formed query");
    let query = CorrelationQuery {
        params: MiningParams::paper(),
        constraints,
    };

    // 4. Mine VALID_MIN(Q) with the constraint-pushing algorithm.
    let result = MiningSession::new(&data.db, &attrs)
        .mine(&query, &MineRequest::new(Algorithm::BmsPlusPlus))
        .expect("valid query")
        .result;
    println!(
        "\nBMS++ found {} valid minimal correlated sets \
         ({} contingency tables, {:?}):",
        result.answers.len(),
        result.metrics.tables_built,
        result.metrics.elapsed
    );
    for set in result.answers.iter().take(12) {
        println!("  {set}");
    }
    if result.answers.len() > 12 {
        println!("  … and {} more", result.answers.len() - 12);
    }

    // 5. Inspect one answer's contingency table — the Figure B view.
    if let Some(first) = result.answers.first() {
        let mut counter = HorizontalCounter::new(&data.db);
        let table = ContingencyTable::build(&mut counter, first);
        println!("\ncontingency table of {first}:");
        for (cell, count) in table.counts().iter().enumerate() {
            let pattern: String = (0..first.len())
                .map(|j| if cell & (1 << j) != 0 { '1' } else { '0' })
                .collect();
            println!(
                "  cells[{pattern}] = {count} (expected {:.1})",
                table.expected(cell)
            );
        }
        println!(
            "  chi² = {:.2}, p-value = {:.4}, correlated at 90%: {}",
            table.chi_squared(),
            table.p_value(),
            table.is_correlated(0.9)
        );
    }
}
