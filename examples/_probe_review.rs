// Examples trade error handling for readability: `unwrap`/`expect` on
// fixed inputs that cannot fail.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use ccs::prelude::*;
fn main() {
    // quick deterministic sweep mirroring the fuzz shapes
    let mut deep = 0;
    let mut nonempty = 0;
    let mut total = 0;
    for p in 0..4u32 {
        for every in 2..5u32 {
            for sum_lo in [6.0, 10.0, 14.0, 18.0] {
                let n_items = 7u32;
                let mut txns = Vec::new();
                for i in 0..50u32 {
                    let mut t: Vec<u32> = vec![(i % 7), ((i * 3) % 7)];
                    if i % every == 0 {
                        t.extend([p, p + 1, p + 2, (p + 3) % n_items]);
                    }
                    txns.push(t);
                }
                let db = TransactionDb::from_ids(n_items, txns);
                let attrs = AttributeTable::with_identity_prices(n_items);
                let q = CorrelationQuery {
                    params: MiningParams {
                        confidence: 0.9,
                        support_fraction: 0.1,
                        max_level: 6,
                        ..MiningParams::paper()
                    },
                    constraints: ConstraintSet::new().and(Constraint::sum_ge("price", sum_lo)),
                };
                let r = MiningSession::new(&db, &attrs)
                    .mine(&q, &MineRequest::new(Algorithm::NaiveMinValid))
                    .unwrap()
                    .result;
                total += 1;
                if !r.answers.is_empty() {
                    nonempty += 1;
                }
                if r.answers.iter().any(|a| a.len() >= 3) {
                    deep += 1;
                }
            }
        }
    }
    println!("total={total} nonempty={nonempty} deep(>=3)={deep}");
}
