//! The shelf-planning scenario from §1 of the paper: find correlations
//! among items of a *single type*, "for use in mapping items to
//! departments and in shelf planning".
//!
//! The focus constraint is `|S.type| = 1` — all items in a reported set
//! share one type — which is anti-monotone (once a set spans two types,
//! every superset does).
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example shelf_planning
//! ```

// Examples trade error handling for readability: `unwrap`/`expect` on
// fixed inputs that cannot fail.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use ccs::prelude::*;

fn main() {
    // Rule-planted data so the discovered bundles are interpretable.
    let data = generate_rules(&RuleParams::small(4_000, 36, 99));
    let db = &data.db;

    // Assign each item a department (type) in blocks of 6: items 0–5 are
    // "bakery", 6–11 "dairy", and so on. The planted rules use disjoint
    // item blocks, so some rules land inside a department and some
    // straddle departments — only the former should be reported.
    let departments = ["bakery", "dairy", "produce", "frozen", "snacks", "drinks"];
    let labels: Vec<&str> = (0..36).map(|i| departments[i / 6]).collect();
    let mut attrs = AttributeTable::with_identity_prices(36);
    attrs.add_categorical("type", &labels);

    // |S.type| <= 1 renders the paper's |S.type| = 1 (a non-empty set
    // always has at least one type).
    let constraints =
        parse_constraints("correlated & ct_supported & |S.type| <= 1", &attrs).unwrap();
    let query = CorrelationQuery {
        params: MiningParams::paper(),
        constraints,
    };

    let mut session = MiningSession::new(db, &attrs);
    let result = session
        .mine(&query, &MineRequest::new(Algorithm::BmsPlusPlus))
        .expect("valid query")
        .result;

    println!(
        "single-department correlated sets ({} found):",
        result.answers.len()
    );
    let type_col = attrs.categorical("type").unwrap();
    for set in result.answers.iter().take(20) {
        let dept = type_col.label(attrs.category_of("type", set.items()[0]));
        println!("  {set} — {dept}");
    }

    // Contrast: without the constraint, cross-department correlations
    // drown the planner in noise.
    let unconstrained = CorrelationQuery::unconstrained(MiningParams::paper());
    let all = session
        .mine(&unconstrained, &MineRequest::new(Algorithm::BmsPlus))
        .expect("valid query")
        .result;
    println!(
        "\nwithout the focus constraint the miner reports {} sets ({}x as many)",
        all.answers.len(),
        if result.answers.is_empty() {
            0
        } else {
            all.answers.len() / result.answers.len().max(1)
        }
    );
}
